package dist

import (
	"errors"
	"fmt"
	"io/fs"
	"net/http"

	"privmdr"
)

// TenantServer is the degenerate single-node topology: one process hosting
// every tenant as its own live QueryServer behind the same /v1/{tenant}/...
// routing the distributed roles use. Each tenant keeps the full QueryServer
// surface (reports, state, refresh, query, healthz — prefix-stripped and
// delegated verbatim), so a deployment can start multi-tenant on one box
// and split into shards/aggregator/replicas later without clients noticing.
// Tenants ingest independently (separate collectors), and within one tenant
// concurrent report frames scale across cores on the collector's sharded
// count stripes — the single-box topology saturates hardware, not a lock,
// before a split becomes necessary.
//
//	GET /v1/tenants           — every tenant's name and ServerStatus
//	/v1/{tenant}/{endpoint}   — the tenant's QueryServer endpoint
type TenantServer struct {
	tenants map[string]*privmdr.QueryServer
	// handlers holds each tenant's prefix-stripped QueryServer, built once
	// at construction so routing doesn't allocate a delegating handler per
	// request.
	handlers  map[string]http.Handler
	snapshots map[string]string
	names     []string
	mux       *http.ServeMux
}

// TenantStatus is one entry of the GET /v1/tenants reply.
type TenantStatus struct {
	Tenant string `json:"tenant"`
	privmdr.ServerStatus
}

// NewTenantServer builds one live QueryServer per tenant. opts applies to
// every tenant (refresh interval, min-new threshold). Call Close when the
// server is discarded.
func NewTenantServer(topo *Topology, opts privmdr.LiveOptions) (*TenantServer, error) {
	protos, err := topo.protocols()
	if err != nil {
		return nil, err
	}
	s := &TenantServer{
		tenants:   make(map[string]*privmdr.QueryServer, len(topo.Tenants)),
		handlers:  make(map[string]http.Handler, len(topo.Tenants)),
		snapshots: make(map[string]string),
	}
	for _, tc := range topo.Tenants {
		qs, err := privmdr.NewLiveQueryServer(protos[tc.Name], opts)
		if err != nil {
			s.closeTenants()
			return nil, fmt.Errorf("dist: tenant %q: %w", tc.Name, err)
		}
		s.tenants[tc.Name] = qs
		s.handlers[tc.Name] = http.StripPrefix("/v1/"+tc.Name, qs)
		s.names = append(s.names, tc.Name)
		if tc.Snapshot != "" {
			s.snapshots[tc.Name] = tc.Snapshot
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("/v1/{tenant}/{endpoint...}", s.route)
	s.mux = mux
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *TenantServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Tenant exposes one tenant's QueryServer for in-process use.
func (s *TenantServer) Tenant(name string) (*privmdr.QueryServer, bool) {
	qs, ok := s.tenants[name]
	return qs, ok
}

func (s *TenantServer) closeTenants() {
	for _, qs := range s.tenants {
		_ = qs.Close()
	}
}

// Close stops every tenant's refresher.
func (s *TenantServer) Close() error {
	s.closeTenants()
	return nil
}

// LoadSnapshots restores every tenant that has a configured snapshot path
// and an existing file, returning how many were restored. Missing files are
// a cold start, not an error.
func (s *TenantServer) LoadSnapshots() (int, error) {
	restored := 0
	for _, name := range s.names {
		path, ok := s.snapshots[name]
		if !ok {
			continue
		}
		if err := s.tenants[name].LoadSnapshot(path); err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return restored, fmt.Errorf("dist: tenant %q: %w", name, err)
		}
		restored++
	}
	return restored, nil
}

// SaveSnapshots persists every tenant that has a configured snapshot path.
func (s *TenantServer) SaveSnapshots() error {
	for _, name := range s.names {
		path, ok := s.snapshots[name]
		if !ok {
			continue
		}
		if err := s.tenants[name].SaveSnapshot(path); err != nil {
			return fmt.Errorf("dist: tenant %q: %w", name, err)
		}
	}
	return nil
}

// route delegates /v1/{tenant}/... to the tenant's QueryServer with the
// prefix stripped.
func (s *TenantServer) route(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	h, ok := s.handlers[name]
	if !ok {
		unknownTenant(w, name)
		return
	}
	h.ServeHTTP(w, r)
}

func (s *TenantServer) handleTenants(w http.ResponseWriter, r *http.Request) {
	out := make([]TenantStatus, 0, len(s.names))
	for _, name := range s.names {
		out = append(out, TenantStatus{Tenant: name, ServerStatus: s.tenants[name].Status()})
	}
	writeJSON(w, http.StatusOK, out)
}
