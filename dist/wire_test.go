package dist

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"privmdr"
)

// sampleDelta builds a real (v2) collector-state delta to embed in
// envelopes: two reports into a fresh Uni collector.
func sampleDelta(t testing.TB) privmdr.CollectorState {
	t.Helper()
	p := privmdr.Params{N: 10, D: 3, C: 16, Eps: 1.0, Seed: 210}
	proto, err := privmdr.ProtocolByName("Uni", p)
	if err != nil {
		t.Fatal(err)
	}
	coll, err := proto.NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2; u++ {
		a, err := proto.Assignment(u)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := proto.ClientReport(a, []int{1, 2, 3}, privmdr.ClientRand(p, u))
		if err != nil {
			t.Fatal(err)
		}
		if err := coll.Submit(rep); err != nil {
			t.Fatal(err)
		}
	}
	st, err := coll.(privmdr.StatefulCollector).State()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPushEnvelopeRoundTrip(t *testing.T) {
	env := PushEnvelope{Shard: "edge-7", Nonce: 1 << 50, Seq: 42, Delta: sampleDelta(t)}
	blob, err := env.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back PushEnvelope
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.Shard != env.Shard || back.Nonce != env.Nonce || back.Seq != env.Seq {
		t.Fatalf("round trip changed header: %+v", back)
	}
	if back.Delta.Received() != env.Delta.Received() {
		t.Fatalf("round trip changed delta: %d reports, want %d",
			back.Delta.Received(), env.Delta.Received())
	}
	re, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, blob) {
		t.Fatalf("envelope encoding is not canonical: %x != %x", re, blob)
	}
}

func TestPushEnvelopeRejects(t *testing.T) {
	delta := sampleDelta(t)
	// Nonce 7 keeps the header layout byte-addressable below:
	// good[0:5] magic+version, good[5] ID length, good[6] 's',
	// good[7] nonce, good[8] sequence, good[9:] the delta.
	good, err := PushEnvelope{Shard: "s", Nonce: 7, Seq: 1, Delta: delta}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Encoder-side validation.
	if _, err := (PushEnvelope{Shard: "", Nonce: 7, Seq: 1, Delta: delta}).MarshalBinary(); err == nil {
		t.Error("empty shard ID encoded")
	}
	if _, err := (PushEnvelope{Shard: strings.Repeat("x", maxShardID+1), Nonce: 7, Seq: 1, Delta: delta}).MarshalBinary(); err == nil {
		t.Error("oversized shard ID encoded")
	}
	if _, err := (PushEnvelope{Shard: "s", Seq: 1, Delta: delta}).MarshalBinary(); err == nil {
		t.Error("zero instance nonce encoded")
	}
	if _, err := (PushEnvelope{Shard: "s", Nonce: 7, Seq: 0, Delta: delta}).MarshalBinary(); err == nil {
		t.Error("zero sequence encoded")
	}
	if _, err := (PushEnvelope{Shard: "s", Nonce: 7, Seq: 1}).MarshalBinary(); err == nil {
		t.Error("zero-value delta encoded")
	}

	// Decoder-side rejection.
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated header", good[:3]},
		{"bad magic", append([]byte("XXXX"), good[4:]...)},
		{"bad version", append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...)},
		{"truncated shard ID", good[:6]},
		{"zero-length shard ID", append(append([]byte{}, good[:5]...), 0)},
		{"oversized shard ID length", append(append([]byte{}, good[:5]...), 0xff, 0xff, 0x01)},
		{"overlong varint length", append(append([]byte{}, good[:5]...), 0x81, 0x00)},
		{"truncated at nonce", good[:7]},
		{"zero nonce", func() []byte {
			b := append(append([]byte{}, good[:7]...), 0)
			return append(b, good[8:]...)
		}()},
		{"zero sequence", func() []byte {
			b := append(append([]byte{}, good[:8]...), 0)
			return append(b, good[9:]...)
		}()},
		{"truncated delta", good[:len(good)-2]},
		{"trailing garbage", append(append([]byte{}, good...), 0)},
	}
	for _, tc := range cases {
		var env PushEnvelope
		if err := env.UnmarshalBinary(tc.data); err == nil {
			t.Errorf("%s: decoded successfully", tc.name)
		}
	}
}

// TestErrStatus pins the distributed error→HTTP-status contract: 413 for
// oversized bodies, 409 for sequencing/epoch/deployment conflicts (wrapped
// or not), 400 for everything else.
func TestErrStatus(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"too large", &http.MaxBytesError{Limit: maxBody}, http.StatusRequestEntityTooLarge},
		{"stale seq", ErrStaleSeq, http.StatusConflict},
		{"wrapped stale seq", fmt.Errorf("dist: shard %q: %w", "s", ErrStaleSeq), http.StatusConflict},
		{"seq gap", ErrSeqGap, http.StatusConflict},
		{"wrapped seq gap", fmt.Errorf("dist: %w", ErrSeqGap), http.StatusConflict},
		{"shard conflict", ErrShardConflict, http.StatusConflict},
		{"wrapped shard conflict", fmt.Errorf("dist: shard %q: %w", "s", ErrShardConflict), http.StatusConflict},
		{"stale epoch", ErrStaleEpoch, http.StatusConflict},
		{"state mismatch", privmdr.ErrStateMismatch, http.StatusConflict},
		{"wrapped state mismatch", fmt.Errorf("mech: %w", privmdr.ErrStateMismatch), http.StatusConflict},
		{"finalized", privmdr.ErrCollectorFinalized, http.StatusConflict},
		{"malformed", errors.New("dist: push envelope truncated at header"), http.StatusBadRequest},
	}
	for _, tc := range cases {
		if got := errStatus(tc.err); got != tc.want {
			t.Errorf("%s: errStatus = %d, want %d", tc.name, got, tc.want)
		}
	}
}
