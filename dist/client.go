package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// transport is the retrying HTTP client every role uses for its outbound
// legs (shard→aggregator pushes, aggregator→replica fan-out). It retries
// transport failures and 5xx responses with exponential backoff — the cases
// where the receiver either never saw the request or refused it temporarily
// — and returns 4xx responses to the caller untouched, since those are
// protocol answers (duplicate ACKs, stale sequences) the caller must
// interpret. Retried requests are safe by construction: every dist push is
// idempotent under its sequence number or epoch.
type transport struct {
	c        *http.Client
	attempts int
	backoff  time.Duration
}

// newTransport builds the default transport: per-request timeout, 4
// attempts, 50 ms backoff doubling between them.
func newTransport(timeout time.Duration) *transport {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &transport{
		c:        &http.Client{Timeout: timeout},
		attempts: 4,
		backoff:  50 * time.Millisecond,
	}
}

// post sends body to url, retrying on network errors and 5xx. It returns
// the final response's status and (bounded) body; err is non-nil only when
// every attempt failed at the transport level or the context ended.
func (t *transport) post(ctx context.Context, url, contentType string, body []byte) (int, []byte, error) {
	var lastErr error
	delay := t.backoff
	for attempt := 0; attempt < t.attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return 0, nil, ctx.Err()
			case <-time.After(delay):
			}
			delay *= 2
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := t.c.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return 0, nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			lastErr = fmt.Errorf("dist: %s: %d %s", url, resp.StatusCode, payload)
			continue
		}
		return resp.StatusCode, payload, nil
	}
	return 0, nil, fmt.Errorf("dist: %s unreachable after %d attempts: %w", url, t.attempts, lastErr)
}
