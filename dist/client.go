package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"time"
)

// transport is the retrying HTTP client every role uses for its outbound
// legs (shard→aggregator pushes, aggregator→replica fan-out, replica
// catch-up pulls). It retries transport failures and 5xx responses with
// exponential backoff — the cases where the receiver either never saw the
// request or refused it temporarily — and returns 4xx responses to the
// caller untouched, since those are protocol answers (duplicate ACKs, stale
// sequences) the caller must interpret. Retried requests are safe by
// construction: every dist push is idempotent under its sequence number or
// epoch, and the GETs are reads.
type transport struct {
	c        *http.Client
	attempts int
	backoff  time.Duration
}

// newTransport builds the default transport: per-request timeout, 4
// attempts, full-jitter backoff over a 50 ms cap doubling between them.
func newTransport(timeout time.Duration) *transport {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &transport{
		c:        &http.Client{Timeout: timeout},
		attempts: 4,
		backoff:  50 * time.Millisecond,
	}
}

// post sends body to url, retrying on network errors and 5xx. It returns
// the final response's status and (bounded) body; err is non-nil only when
// every attempt failed at the transport level or the context ended.
func (t *transport) post(ctx context.Context, url, contentType string, body []byte) (int, []byte, error) {
	return t.do(ctx, http.MethodPost, url, contentType, body, t.attempts)
}

// postN is post with an explicit attempt budget (≤ 0 means the transport
// default) — the fan-out uses 1 to probe a replica it believes dead.
func (t *transport) postN(ctx context.Context, url, contentType string, body []byte, attempts int) (int, []byte, error) {
	return t.do(ctx, http.MethodPost, url, contentType, body, attempts)
}

// get fetches url with the same retry schedule as post.
func (t *transport) get(ctx context.Context, url string) (int, []byte, error) {
	return t.do(ctx, http.MethodGet, url, "", nil, t.attempts)
}

// do is the shared retry loop. Between attempts it sleeps a "full jitter"
// backoff: uniform in (0, cap], with the cap doubling per attempt. Plain
// doubling without jitter synchronizes every client that failed together —
// all shards retrying a restarted aggregator would wake in lockstep at
// 50/100/200 ms and collide again; the jitter spreads each wave over the
// whole window.
func (t *transport) do(ctx context.Context, method, url, contentType string, body []byte, attempts int) (int, []byte, error) {
	if attempts <= 0 {
		attempts = t.attempts
	}
	var lastErr error
	cap := t.backoff
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			delay := time.Duration(1 + rand.Int64N(int64(cap)))
			select {
			case <-ctx.Done():
				return 0, nil, ctx.Err()
			case <-time.After(delay):
			}
			cap *= 2
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return 0, nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := t.c.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return 0, nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		payload, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			lastErr = fmt.Errorf("dist: %s: %d %s", url, resp.StatusCode, payload)
			continue
		}
		return resp.StatusCode, payload, nil
	}
	return 0, nil, fmt.Errorf("dist: %s unreachable after %d attempts: %w", url, attempts, lastErr)
}
