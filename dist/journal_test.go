package dist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func TestJournalRecordRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("hello"),
		{},
		bytes.Repeat([]byte{0xAB}, 1000),
	}
	var stream []byte
	for _, p := range payloads {
		stream = appendJournalRecord(stream, p)
	}
	for i, want := range payloads {
		payload, n, err := decodeJournalRecord(stream)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("record %d: payload %q, want %q", i, payload, want)
		}
		stream = stream[n:]
	}
	if len(stream) != 0 {
		t.Fatalf("%d trailing bytes after all records", len(stream))
	}
}

func TestJournalRecordRejects(t *testing.T) {
	good := appendJournalRecord(nil, []byte("payload"))
	flipped := append([]byte(nil), good...)
	flipped[7] ^= 0x01 // a payload byte — CRC must catch it
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated header", good[:4]},
		{"bad magic", append([]byte("XXXX"), good[4:]...)},
		{"bad version", append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...)},
		{"overlong varint length", append(append([]byte{}, good[:5]...), 0x81, 0x00)},
		{"oversized length claim", append(append([]byte{}, good[:5]...), 0xff, 0xff, 0xff, 0xff, 0x7f)},
		{"truncated payload", good[:len(good)-5]},
		{"truncated CRC", good[:len(good)-1]},
		{"corrupted payload", flipped},
	}
	for _, tc := range cases {
		if _, _, err := decodeJournalRecord(tc.data); err == nil {
			t.Errorf("%s: decoded successfully", tc.name)
		}
	}
}

func TestJournalReopenAndTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, records, torn, err := openJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 || torn != 0 {
		t.Fatalf("fresh journal: %d records, %d torn", len(records), torn)
	}
	for _, p := range []string{"one", "two", "three"} {
		if err := j.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a torn partial record at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	partial := appendJournalRecord(nil, []byte("never finished"))
	if _, err := f.Write(partial[:len(partial)-6]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j, records, torn, err = openJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if torn == 0 {
		t.Fatal("torn tail not detected")
	}
	if len(records) != 3 || string(records[0]) != "one" || string(records[2]) != "three" {
		t.Fatalf("reopen recovered %d records: %q", len(records), records)
	}
	// The tail was truncated away, so a new append must extend a clean file.
	if err := j.Append([]byte("four")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, records, torn, err = openJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 || len(records) != 4 || string(records[3]) != "four" {
		t.Fatalf("after truncate+append: %d records, %d torn: %q", len(records), torn, records)
	}
}

func TestJournalCompactTo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, _, err := openJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("covered-1")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("covered-2")); err != nil {
		t.Fatal(err)
	}
	off := j.Size()
	if err := j.Append([]byte("survivor")); err != nil {
		t.Fatal(err)
	}
	if err := j.CompactTo(off); err != nil {
		t.Fatal(err)
	}
	// The compacted journal must keep accepting appends on the swapped file.
	if err := j.Append([]byte("after-compact")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, records, torn, err := openJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 || len(records) != 2 ||
		string(records[0]) != "survivor" || string(records[1]) != "after-compact" {
		t.Fatalf("after compaction: %d records, %d torn: %q", len(records), torn, records)
	}
}

func TestAggSnapshotRoundTrip(t *testing.T) {
	snap := aggSnapshot{
		epoch:         7,
		sealedReports: 4200,
		cursors: map[string]shardCursor{
			"edge-0": {nonce: 1 << 60, seq: 12},
			"edge-1": {nonce: 99, seq: 1},
		},
		sealed: []byte("PMSS-blob-stand-in"),
	}
	blob := snap.encode()
	back, err := decodeAggSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.epoch != snap.epoch || back.sealedReports != snap.sealedReports {
		t.Fatalf("round trip changed header: %+v", back)
	}
	if len(back.cursors) != 2 || back.cursors["edge-0"] != snap.cursors["edge-0"] ||
		back.cursors["edge-1"] != snap.cursors["edge-1"] {
		t.Fatalf("round trip changed cursors: %+v", back.cursors)
	}
	if !bytes.Equal(back.sealed, snap.sealed) {
		t.Fatalf("round trip changed sealed blob")
	}
	// Canonical: re-encoding the decoded snapshot reproduces the bytes.
	if re := back.encode(); !bytes.Equal(re, blob) {
		t.Fatalf("snapshot encoding is not canonical")
	}
}

func TestAggSnapshotRejectsCorruption(t *testing.T) {
	snap := aggSnapshot{
		epoch:   3,
		cursors: map[string]shardCursor{"s": {nonce: 5, seq: 9}},
		sealed:  []byte("blob"),
	}
	good := snap.encode()
	if _, err := decodeAggSnapshot(good); err != nil {
		t.Fatal(err)
	}
	// Every single-byte flip must fail (CRC), as must truncation at every
	// length — a snapshot is written atomically, so any defect is real
	// corruption and recovery must refuse it loudly.
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x01
		if _, err := decodeAggSnapshot(bad); err == nil {
			t.Fatalf("flip at byte %d decoded successfully", i)
		}
	}
	for cut := 0; cut < len(good); cut++ {
		if _, err := decodeAggSnapshot(good[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// A CRC-valid body whose cursor count overruns the remaining bytes must
	// still fail cleanly (the count is bounds-checked before allocating).
	body := []byte{'P', 'M', 'A', 'S', aggSnapVersion, 1, 1, 0x7f}
	forged := binary.LittleEndian.AppendUint32(body, crc32.Checksum(body, crcJournal))
	if _, err := decodeAggSnapshot(forged); err == nil {
		t.Fatal("forged snapshot decoded successfully")
	}
}
