package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"privmdr"
)

// SealOptions configure the aggregator's epoch coordinator.
type SealOptions struct {
	// Interval is how often the background sealer checks for seal-worthy
	// tenants. Zero disables it: epochs then seal only on the report
	// threshold or on demand (Seal, POST /v1/{tenant}/seal).
	Interval time.Duration
	// MinNewReports is the report threshold: a scheduled seal requires this
	// many reports since the last sealed epoch (≤ 1 means any), and when
	// > 0 an applied push that reaches it seals immediately instead of
	// waiting for the ticker.
	MinNewReports int
	// Timeout bounds each outbound fan-out request (default 10s).
	Timeout time.Duration
}

// Aggregator is the epoch coordinator: per tenant it merges shard push
// deltas into one collector (tracking each shard's last applied sequence
// number so retries are idempotent), and seals epochs — a non-destructive
// state export stamped with the next epoch number and fanned out to every
// configured query replica. Endpoints per tenant:
//
//	POST /v1/{tenant}/push    — binary PushEnvelope; 200 with {"applied"}
//	                            (false for an idempotent duplicate), 409
//	                            with {"last"} on stale/gapped sequences
//	POST /v1/{tenant}/seal    — force-seal an epoch now, fan it out
//	GET  /v1/{tenant}/state   — the merged CollectorState (binary)
//	GET  /v1/{tenant}/params  — public deployment parameters
//	GET  /v1/{tenant}/healthz — AggregatorStatus
type Aggregator struct {
	tenants  map[string]*aggTenant
	names    []string
	replicas []string
	mux      *http.ServeMux
	tr       *transport

	interval time.Duration
	minNew   int

	// sealWG tracks threshold seals spawned off push handlers so Close can
	// drain them.
	sealWG sync.WaitGroup

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{} // closed when the background sealer exits; nil without one
}

// shardCursor is the aggregator's per-shard sequencing state: the instance
// nonce of the shard incarnation whose pushes built the history, and the
// last sequence number applied from it.
type shardCursor struct {
	nonce uint64
	seq   uint64
}

// aggTenant is one tenant's merged collector plus its epoch bookkeeping.
type aggTenant struct {
	name  string
	proto privmdr.Protocol

	// mu guards everything below. Pushes, seals, and state exports all
	// serialize on it; the collector itself is only touched under mu.
	mu   sync.Mutex
	coll privmdr.StatefulCollector
	// shards is each shard's sequencing cursor.
	shards map[string]shardCursor
	// epoch is the last sealed epoch number (0 before the first seal);
	// sealedReports is how many reports that epoch included.
	epoch         uint64
	sealedReports int
	lastSealErr   string
}

// AggregatorStatus is one tenant's GET /healthz reply on the aggregator.
type AggregatorStatus struct {
	Role      string `json:"role"`
	Tenant    string `json:"tenant"`
	Mechanism string `json:"mechanism"`
	// Received is how many reports the merged collector holds.
	Received int `json:"received"`
	// Epoch is the last sealed epoch (0 before the first);
	// SealedReports is how many reports it included, and Staleness is the
	// merged-but-unsealed remainder.
	Epoch         uint64 `json:"epoch"`
	SealedReports int    `json:"sealed_reports"`
	Staleness     int    `json:"staleness"`
	// Shards maps each shard ID to its last applied push sequence number.
	Shards map[string]uint64 `json:"shards,omitempty"`
	// LastSealError is the most recent seal or fan-out failure, empty once
	// a later seal fully succeeds.
	LastSealError string `json:"last_seal_error,omitempty"`
}

// SealResult reports one seal attempt.
type SealResult struct {
	Tenant string `json:"tenant"`
	// Sealed reports whether a new epoch was sealed; when false, Epoch and
	// Reports describe the still-current previous epoch.
	Sealed bool   `json:"sealed"`
	Epoch  uint64 `json:"epoch"`
	// Reports is how many reports the epoch includes.
	Reports int `json:"reports"`
	// Fanout is how many replicas now serve an epoch ≥ this one; Errors
	// lists the replicas that could not be updated (they stay on their
	// previous epoch until the next seal reaches them).
	Fanout int      `json:"fanout"`
	Errors []string `json:"errors,omitempty"`
}

// NewAggregator builds the aggregator role over a topology. Replicas for
// the epoch fan-out come from the topology. Call Close when the aggregator
// is discarded.
func NewAggregator(topo *Topology, opts SealOptions) (*Aggregator, error) {
	protos, err := topo.protocols()
	if err != nil {
		return nil, err
	}
	a := &Aggregator{
		tenants:  make(map[string]*aggTenant, len(topo.Tenants)),
		replicas: append([]string(nil), topo.Replicas...),
		tr:       newTransport(opts.Timeout),
		interval: opts.Interval,
		minNew:   opts.MinNewReports,
		stop:     make(chan struct{}),
	}
	for _, tc := range topo.Tenants {
		proto := protos[tc.Name]
		coll, err := proto.NewCollector()
		if err != nil {
			return nil, fmt.Errorf("dist: tenant %q: %w", tc.Name, err)
		}
		a.tenants[tc.Name] = &aggTenant{
			name:   tc.Name,
			proto:  proto,
			coll:   coll.(privmdr.StatefulCollector),
			shards: make(map[string]shardCursor),
		}
		a.names = append(a.names, tc.Name)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/{tenant}/push", a.handlePush)
	mux.HandleFunc("POST /v1/{tenant}/seal", a.handleSeal)
	mux.HandleFunc("GET /v1/{tenant}/state", a.handleState)
	mux.HandleFunc("GET /v1/{tenant}/params", a.handleParams)
	mux.HandleFunc("GET /v1/{tenant}/healthz", a.handleHealthz)
	a.mux = mux
	if opts.Interval > 0 {
		a.done = make(chan struct{})
		go a.sealLoop()
	}
	return a, nil
}

// ServeHTTP implements http.Handler.
func (a *Aggregator) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

// Close stops the background sealer and waits for any in-flight threshold
// seals. Shut the HTTP listener down first so no new pushes can spawn seals
// while Close drains.
func (a *Aggregator) Close() error {
	a.stopOnce.Do(func() { close(a.stop) })
	if a.done != nil {
		<-a.done
	}
	a.sealWG.Wait()
	return nil
}

// sealLoop is the background sealer: every interval it seals each tenant
// that accumulated at least MinNewReports since its last epoch.
func (a *Aggregator) sealLoop() {
	defer close(a.done)
	t := time.NewTicker(a.interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			for _, name := range a.names {
				_, _ = a.Seal(context.Background(), name, false)
			}
		}
	}
}

// apply merges one push envelope under the tenant's sequencing protocol.
// It returns whether the delta was applied (false for the idempotent
// duplicate seq == last) and the shard's last applied sequence number —
// which a conflicting shard uses to resync.
//
// The duplicate/stale/gap rules only hold within one shard incarnation, so
// they apply only when the envelope's instance nonce matches the cursor's.
// A different nonce starting over at seq 1 is a restarted shard: its old
// in-memory state died with it, so its new deltas are genuinely fresh
// reports and the cursor is replaced. A different nonce mid-sequence can
// only be a duplicate shard ID (or a replay from a dead incarnation) and is
// rejected with ErrShardConflict — never duplicate-ACKed, which would make
// the pusher silently drop the delta as "already merged".
func (t *aggTenant) apply(env PushEnvelope) (applied bool, last uint64, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, known := t.shards[env.Shard]
	last = cur.seq
	restart := known && cur.nonce != env.Nonce
	if restart && env.Seq != 1 {
		return false, last, fmt.Errorf("dist: shard %q pushed seq %d under a new instance nonce (last applied %d from a previous instance — restarted shard or duplicate shard ID): %w",
			env.Shard, env.Seq, last, ErrShardConflict)
	}
	if !restart {
		switch {
		case known && env.Seq == last:
			// The retry of a push whose ACK was lost: already merged, ACK
			// again.
			return false, last, nil
		case env.Seq < last:
			return false, last, fmt.Errorf("dist: shard %q pushed seq %d, last applied %d: %w",
				env.Shard, env.Seq, last, ErrStaleSeq)
		case env.Seq > last+1:
			return false, last, fmt.Errorf("dist: shard %q pushed seq %d, last applied %d: %w",
				env.Shard, env.Seq, last, ErrSeqGap)
		}
	}
	if err := t.coll.Merge(env.Delta); err != nil {
		return false, last, err
	}
	t.shards[env.Shard] = shardCursor{nonce: env.Nonce, seq: env.Seq}
	return true, env.Seq, nil
}

func (a *Aggregator) handlePush(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	t, ok := a.tenants[name]
	if !ok {
		unknownTenant(w, name)
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	var env PushEnvelope
	if err := env.UnmarshalBinary(body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	applied, last, err := t.apply(env)
	if err != nil {
		writeJSON(w, errStatus(err), pushAck{Last: last, Code: ackCode(err), Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, pushAck{Applied: applied, Last: last})
	if applied && a.minNew > 0 {
		// Threshold sealing: don't wait for the ticker once enough reports
		// accumulated. Runs in its own goroutine, detached from the request
		// context, so push latency never pays for estimator fan-out and a
		// client disconnect can't abort the replica updates mid-flight;
		// Close drains the WaitGroup.
		a.sealWG.Add(1)
		ctx := context.WithoutCancel(r.Context())
		go func() {
			defer a.sealWG.Done()
			_, _ = a.Seal(ctx, name, false)
		}()
	}
}

// ackCode maps a push-apply error to the ack's machine-readable code, so the
// shard can react without parsing messages.
func ackCode(err error) string {
	switch {
	case errors.Is(err, ErrStaleSeq):
		return "stale"
	case errors.Is(err, ErrSeqGap):
		return "gap"
	case errors.Is(err, ErrShardConflict):
		return "conflict"
	}
	return ""
}

// Seal exports the tenant's merged state, stamps it with the next epoch
// number, and fans it out to every replica. force seals whenever any new
// report arrived since the last epoch (and, for an empty tenant, even a
// zero-report first epoch so replicas can start serving priors); a
// scheduled seal (force=false) additionally requires MinNewReports.
func (a *Aggregator) Seal(ctx context.Context, tenant string, force bool) (SealResult, error) {
	t, ok := a.tenants[tenant]
	if !ok {
		return SealResult{}, fmt.Errorf("dist: unknown tenant %q", tenant)
	}
	t.mu.Lock()
	fresh := t.coll.Received() - t.sealedReports
	threshold := 1
	if !force && a.minNew > 1 {
		threshold = a.minNew
	}
	if fresh < threshold && !(force && t.epoch == 0) {
		res := SealResult{Tenant: tenant, Epoch: t.epoch, Reports: t.sealedReports}
		t.mu.Unlock()
		return res, nil
	}
	st, err := t.coll.State()
	if err != nil {
		t.lastSealErr = err.Error()
		t.mu.Unlock()
		return SealResult{}, err
	}
	t.epoch++
	epoch := t.epoch
	t.sealedReports = st.Received()
	t.mu.Unlock()

	blob, err := privmdr.EncodeSnapshot(st, epoch)
	if err != nil {
		t.setSealErr(err.Error())
		return SealResult{}, err
	}
	res := SealResult{Tenant: tenant, Sealed: true, Epoch: epoch, Reports: st.Received()}
	res.Fanout, res.Errors = a.fanout(ctx, tenant, blob)
	if len(res.Errors) > 0 {
		t.setSealErr(fmt.Sprintf("epoch %d: %s", epoch, res.Errors[0]))
	} else {
		t.setSealErr("")
	}
	return res, nil
}

func (t *aggTenant) setSealErr(msg string) {
	t.mu.Lock()
	t.lastSealErr = msg
	t.mu.Unlock()
}

// fanout pushes a sealed snapshot to every replica concurrently. A 409 from
// a replica counts as success: it already serves this epoch or a newer one
// (a racing seal won), either way it is not behind.
func (a *Aggregator) fanout(ctx context.Context, tenant string, blob []byte) (ok int, errs []string) {
	if len(a.replicas) == 0 {
		return 0, nil
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, rep := range a.replicas {
		wg.Add(1)
		go func() {
			defer wg.Done()
			url := rep + "/v1/" + tenant + "/epoch"
			status, body, err := a.tr.post(ctx, url, "application/octet-stream", blob)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				errs = append(errs, err.Error())
			case status >= 200 && status < 300, status == http.StatusConflict:
				ok++
			default:
				errs = append(errs, fmt.Sprintf("dist: %s: %d %s", url, status, body))
			}
		}()
	}
	wg.Wait()
	return ok, errs
}

// State exports a tenant's merged collector state.
func (a *Aggregator) State(tenant string) (privmdr.CollectorState, error) {
	t, ok := a.tenants[tenant]
	if !ok {
		return privmdr.CollectorState{}, fmt.Errorf("dist: unknown tenant %q", tenant)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.coll.State()
}

func (a *Aggregator) handleSeal(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if _, ok := a.tenants[name]; !ok {
		unknownTenant(w, name)
		return
	}
	res, err := a.Seal(r.Context(), name, true)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (a *Aggregator) handleState(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	t, ok := a.tenants[name]
	if !ok {
		unknownTenant(w, name)
		return
	}
	t.mu.Lock()
	st, err := t.coll.State()
	t.mu.Unlock()
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	blob, err := st.MarshalBinary()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(blob)
}

func (a *Aggregator) handleParams(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	t, ok := a.tenants[name]
	if !ok {
		unknownTenant(w, name)
		return
	}
	writeJSON(w, http.StatusOK, privmdr.ServerParams{Mechanism: t.proto.Name(), Params: t.proto.Params()})
}

func (a *Aggregator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	t, ok := a.tenants[name]
	if !ok {
		unknownTenant(w, name)
		return
	}
	t.mu.Lock()
	shards := make(map[string]uint64, len(t.shards))
	for id, cur := range t.shards {
		shards[id] = cur.seq
	}
	status := AggregatorStatus{
		Role:          "aggregator",
		Tenant:        t.name,
		Mechanism:     t.proto.Name(),
		Received:      t.coll.Received(),
		Epoch:         t.epoch,
		SealedReports: t.sealedReports,
		Staleness:     t.coll.Received() - t.sealedReports,
		Shards:        shards,
		LastSealError: t.lastSealErr,
	}
	t.mu.Unlock()
	writeJSON(w, http.StatusOK, status)
}
