package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"privmdr"
)

// SealOptions configure the aggregator's epoch coordinator.
type SealOptions struct {
	// Interval is how often the background sealer checks for seal-worthy
	// tenants. Zero disables it: epochs then seal only on the report
	// threshold or on demand (Seal, POST /v1/{tenant}/seal).
	Interval time.Duration
	// MinNewReports is the report threshold: a scheduled seal requires this
	// many reports since the last sealed epoch (≤ 1 means any), and when
	// > 0 an applied push that reaches it seals immediately instead of
	// waiting for the ticker.
	MinNewReports int
	// Timeout bounds each outbound fan-out request (default 10s).
	Timeout time.Duration
	// DataDir, when set, makes the aggregator crash-durable: every applied
	// push delta is journaled (per-tenant WAL under <DataDir>/<tenant>/)
	// before it is acknowledged, and sealing compacts the journal into a
	// snapshot. NewAggregator over a non-empty DataDir replays
	// snapshot + journal, recovering the merged state, the epoch counter,
	// the last sealed blob (GET /epoch/latest keeps serving), and every
	// shard's sequence cursor — shards resume at their next seq with no
	// re-baseline. Empty means in-memory only (a crash drops unsealed
	// deltas and shards re-baseline).
	DataDir string
	// SyncInterval relaxes journal durability: zero (the default) fsyncs
	// every journaled delta before its push is acknowledged; a positive
	// interval batches fsyncs in the background at that cadence, so a
	// crash loses at most the deltas acknowledged inside the un-fsynced
	// window (see PROTOCOL.md "Durability & recovery" for how shards
	// resync past such a loss). Ignored without DataDir.
	SyncInterval time.Duration
}

// fanDeadAfter is the consecutive-failure count at which the fan-out stops
// paying a full retry storm for a replica: from then on each seal sends a
// single-attempt probe (the replica catches up via GET /epoch/latest
// anyway), and the first probe that lands restores full service.
const fanDeadAfter = 3

// replicaFan is the aggregator's per-replica fan-out health record.
type replicaFan struct {
	url string

	mu      sync.Mutex
	epoch   uint64 // last epoch this replica acknowledged
	fails   int    // consecutive fan-out failures
	skipped uint64 // seals downgraded to a single-attempt probe
	lastErr string
}

// ReplicaFanoutStatus is one replica's entry in the aggregator's healthz.
type ReplicaFanoutStatus struct {
	URL string `json:"url"`
	// Epoch is the last epoch this replica acknowledged over the push
	// fan-out (it may be newer via its own catch-up pulls).
	Epoch uint64 `json:"epoch"`
	// ConsecutiveFailures counts fan-out failures since the last success;
	// at 3 or more the replica is probed once per seal instead of retried.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Skipped counts the seals downgraded to a single-attempt probe.
	Skipped   uint64 `json:"skipped,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// Aggregator is the epoch coordinator: per tenant it merges shard push
// deltas into one collector (tracking each shard's last applied sequence
// number so retries are idempotent), and seals epochs — a non-destructive
// state export stamped with the next epoch number and fanned out to every
// configured query replica. Endpoints per tenant:
//
//	POST /v1/{tenant}/push    — binary PushEnvelope; 200 with {"applied"}
//	                            (false for an idempotent duplicate), 409
//	                            with {"last"} on stale/gapped sequences
//	POST /v1/{tenant}/seal    — force-seal an epoch now, fan it out
//	GET  /v1/{tenant}/state   — the merged CollectorState (binary)
//	GET  /v1/{tenant}/params  — public deployment parameters
//	GET  /v1/{tenant}/healthz — AggregatorStatus
type Aggregator struct {
	tenants  map[string]*aggTenant
	names    []string
	replicas []*replicaFan
	mux      *http.ServeMux
	tr       *transport

	interval time.Duration
	minNew   int

	// sealWG tracks threshold seals spawned off push handlers so Close can
	// drain them.
	sealWG sync.WaitGroup

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{} // closed when the background sealer exits; nil without one
}

// shardCursor is the aggregator's per-shard sequencing state: the instance
// nonce of the shard incarnation whose pushes built the history, and the
// last sequence number applied from it.
type shardCursor struct {
	nonce uint64
	seq   uint64
}

// aggTenant is one tenant's merged collector plus its epoch bookkeeping.
type aggTenant struct {
	name  string
	proto privmdr.Protocol
	// store is the tenant's durability layer (nil without a DataDir).
	store *tenantStore

	// sealMu serializes seals end to end — state export, snapshot write,
	// journal compaction, fan-out. The journal offset a seal captures for
	// compaction is in the current journal file's coordinates, and only
	// another compaction ever shifts them, so two concurrent seals (ticker,
	// threshold goroutine, manual POST /seal) could otherwise compact with
	// a stale offset and drop acknowledged records no snapshot covers; full
	// serialization also keeps snapshot.pmas and sealedBlob monotone in
	// epoch and keeps the snapshot temp file single-writer. Pushes never
	// take it — they only need mu — so a slow seal never blocks ingest.
	// Lock order: sealMu before mu, never the reverse.
	sealMu sync.Mutex

	// mu guards everything below. Pushes, seals, and state exports all
	// serialize on it; the collector itself is only touched under mu.
	mu   sync.Mutex
	coll privmdr.StatefulCollector
	// shards is each shard's sequencing cursor.
	shards map[string]shardCursor
	// recovered marks shards whose cursor came from a restart recovery and
	// has not been confirmed by a live push yet. For such a shard — and
	// only such a shard — a gapped sequence is accepted with a cursor jump
	// instead of rejected: in relaxed-sync mode the crash may have lost
	// the acknowledged un-fsynced tail, and the shard cannot re-ship those
	// deltas (its baseline has moved past them), so rejecting the gap
	// would wedge it forever. The jump bounds the loss to that tail and
	// counts it in gapsAccepted; any applied push clears the mark. Only a
	// relaxed-sync recovery populates the map — a strict journal cannot
	// lose an acknowledged delta, so its gaps stay hard rejections.
	recovered map[string]bool
	// gapsAccepted counts post-recovery gap jumps — each one is a bounded,
	// crash-caused delta loss an operator should know about.
	gapsAccepted uint64
	// epoch is the last sealed epoch number (0 before the first seal);
	// sealedReports is how many reports that epoch included.
	epoch         uint64
	sealedReports int
	lastSealErr   string
	// sealedBlob is the last sealed epoch's encoded PMSS snapshot — what
	// GET /epoch/latest serves to catching-up replicas (nil before the
	// first seal; restored from the snapshot file on recovery).
	sealedBlob []byte
}

// journalError marks a push that could not be made durable: the delta was
// NOT merged, and the push is answered 503 so the shard's transport retries
// it — a disk problem must look like a transient outage, not a protocol
// verdict.
type journalError struct{ err error }

func (e *journalError) Error() string { return "dist: journal: " + e.err.Error() }
func (e *journalError) Unwrap() error { return e.err }

// AggregatorStatus is one tenant's GET /healthz reply on the aggregator.
type AggregatorStatus struct {
	Role      string `json:"role"`
	Tenant    string `json:"tenant"`
	Mechanism string `json:"mechanism"`
	// Received is how many reports the merged collector holds.
	Received int `json:"received"`
	// Epoch is the last sealed epoch (0 before the first);
	// SealedReports is how many reports it included, and Staleness is the
	// merged-but-unsealed remainder.
	Epoch         uint64 `json:"epoch"`
	SealedReports int    `json:"sealed_reports"`
	Staleness     int    `json:"staleness"`
	// Shards maps each shard ID to its last applied push sequence number.
	Shards map[string]uint64 `json:"shards,omitempty"`
	// LastSealError is the most recent seal or fan-out failure, empty once
	// a later seal fully succeeds.
	LastSealError string `json:"last_seal_error,omitempty"`
	// Durable reports whether applied deltas are journaled to disk.
	Durable bool `json:"durable"`
	// RecoveredGaps counts post-restart sequence gaps accepted from shards
	// whose acknowledged deltas were lost in a crash (relaxed-sync mode);
	// each one is a bounded delta loss.
	RecoveredGaps uint64 `json:"recovered_gaps,omitempty"`
	// Replicas is the per-replica fan-out health: last delivered epoch,
	// consecutive failures, and whether the replica is being probed
	// instead of retried.
	Replicas []ReplicaFanoutStatus `json:"replicas,omitempty"`
}

// SealResult reports one seal attempt.
type SealResult struct {
	Tenant string `json:"tenant"`
	// Sealed reports whether a new epoch was sealed; when false, Epoch and
	// Reports describe the still-current previous epoch.
	Sealed bool   `json:"sealed"`
	Epoch  uint64 `json:"epoch"`
	// Reports is how many reports the epoch includes.
	Reports int `json:"reports"`
	// Fanout is how many replicas now serve an epoch ≥ this one; Errors
	// lists the replicas that could not be updated (they stay on their
	// previous epoch until the next seal reaches them).
	Fanout int      `json:"fanout"`
	Errors []string `json:"errors,omitempty"`
}

// NewAggregator builds the aggregator role over a topology. Replicas for
// the epoch fan-out come from the topology. With SealOptions.DataDir set,
// the aggregator recovers its merged state, epoch counter, sealed blob, and
// per-shard sequence cursors from the last snapshot plus the journal before
// serving — a restart is invisible to shards except for the downtime. Call
// Close when the aggregator is discarded.
func NewAggregator(topo *Topology, opts SealOptions) (*Aggregator, error) {
	protos, err := topo.protocols()
	if err != nil {
		return nil, err
	}
	a := &Aggregator{
		tenants:  make(map[string]*aggTenant, len(topo.Tenants)),
		tr:       newTransport(opts.Timeout),
		interval: opts.Interval,
		minNew:   opts.MinNewReports,
		stop:     make(chan struct{}),
	}
	for _, rep := range topo.Replicas {
		a.replicas = append(a.replicas, &replicaFan{url: rep})
	}
	for _, tc := range topo.Tenants {
		proto := protos[tc.Name]
		coll, err := proto.NewCollector()
		if err != nil {
			return nil, fmt.Errorf("dist: tenant %q: %w", tc.Name, err)
		}
		t := &aggTenant{
			name:      tc.Name,
			proto:     proto,
			coll:      coll.(privmdr.StatefulCollector),
			shards:    make(map[string]shardCursor),
			recovered: make(map[string]bool),
		}
		// Register before recovering: recover assigns t.store as soon as the
		// files are open, so on any later recovery failure closeStores finds
		// the tenant and releases its journal fd and sync goroutine.
		a.tenants[tc.Name] = t
		a.names = append(a.names, tc.Name)
		if opts.DataDir != "" {
			if err := t.recover(filepath.Join(opts.DataDir, tc.Name), opts.SyncInterval); err != nil {
				a.closeStores()
				return nil, fmt.Errorf("dist: tenant %q: %w", tc.Name, err)
			}
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/{tenant}/push", a.handlePush)
	mux.HandleFunc("POST /v1/{tenant}/seal", a.handleSeal)
	mux.HandleFunc("GET /v1/{tenant}/state", a.handleState)
	mux.HandleFunc("GET /v1/{tenant}/epoch/latest", a.handleEpochLatest)
	mux.HandleFunc("GET /v1/{tenant}/params", a.handleParams)
	mux.HandleFunc("GET /v1/{tenant}/healthz", a.handleHealthz)
	a.mux = mux
	if opts.Interval > 0 {
		a.done = make(chan struct{})
		go a.sealLoop()
	}
	return a, nil
}

// recover opens the tenant's durability dir and replays snapshot + journal
// into the fresh collector: the snapshot restores the sealed baseline
// (state, epoch, cursors, sealed blob), then every journaled envelope is
// re-applied through the same sequencing rules as a live push — records the
// snapshot already covers are sequencing no-ops, so any crash point between
// snapshot write and journal compaction replays correctly.
func (t *aggTenant) recover(dir string, syncInterval time.Duration) error {
	store, snap, records, _, err := openTenantStore(dir, syncInterval)
	if err != nil {
		return err
	}
	t.store = store
	if snap != nil {
		st, epoch, err := privmdr.DecodeSnapshot(snap.sealed)
		if err != nil {
			return fmt.Errorf("dist: recovering snapshot: %w", err)
		}
		if epoch != snap.epoch {
			return fmt.Errorf("dist: snapshot epoch %d disagrees with its sealed blob (%d)", snap.epoch, epoch)
		}
		if st.Received() > 0 || snap.epoch > 0 {
			if err := t.coll.Merge(st); err != nil {
				return fmt.Errorf("dist: recovering snapshot state: %w", err)
			}
		}
		for id, cur := range snap.cursors {
			t.shards[id] = cur
		}
		t.epoch = snap.epoch
		t.sealedReports = int(snap.sealedReports)
		t.sealedBlob = snap.sealed
	}
	for _, raw := range records {
		var env PushEnvelope
		if err := env.UnmarshalBinary(raw); err != nil {
			// CRC-valid but undecodable: the journal only ever holds
			// envelopes that decoded once, so this is real corruption.
			return fmt.Errorf("dist: journal record: %w", err)
		}
		t.replay(env)
	}
	// A recovered cursor is unconfirmed until its shard pushes again, but
	// the gap-acceptance exception that enables (see aggTenant.recovered)
	// exists only because a relaxed-sync crash can lose acknowledged
	// deltas. In strict mode every acknowledged delta was fsynced before
	// its ACK, so a post-restart gap is a real protocol anomaly and keeps
	// the live rejection.
	if syncInterval > 0 {
		for id := range t.shards {
			t.recovered[id] = true
		}
	}
	return nil
}

// replay re-applies one journaled envelope during recovery. Sequencing is
// tolerant where live apply is strict: everything in the journal was
// validated and applied (or was about to be) when it was written, so a
// record at or below the cursor is simply covered by the snapshot (or a
// crash-retry duplicate) and skipped, a stale-incarnation record is
// skipped, and an in-order record is merged.
func (t *aggTenant) replay(env PushEnvelope) {
	cur, known := t.shards[env.Shard]
	if known && cur.nonce != env.Nonce {
		if env.Seq != 1 {
			return // a dead incarnation's record, already superseded
		}
		// A restarted shard's fresh seq-1: replaces the cursor, like live.
	} else if known && env.Seq <= cur.seq {
		return // covered by the snapshot, or a journal-retry duplicate
	}
	if err := t.coll.Merge(env.Delta); err != nil {
		// The record was journaled ahead of a merge that then failed (or
		// would have); the live path returned the error to the shard
		// without advancing the cursor, so skipping mirrors it exactly.
		return
	}
	t.shards[env.Shard] = shardCursor{nonce: env.Nonce, seq: env.Seq}
}

func (a *Aggregator) closeStores() {
	for _, t := range a.tenants {
		if t.store != nil {
			_ = t.store.Close()
		}
	}
}

// ServeHTTP implements http.Handler.
func (a *Aggregator) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

// Close stops the background sealer, waits for any in-flight threshold
// seals, and flushes and closes the per-tenant journals. Shut the HTTP
// listener down first so no new pushes can spawn seals while Close drains.
func (a *Aggregator) Close() error {
	a.stopOnce.Do(func() { close(a.stop) })
	if a.done != nil {
		<-a.done
	}
	a.sealWG.Wait()
	a.closeStores()
	return nil
}

// sealLoop is the background sealer: every interval it seals each tenant
// that accumulated at least MinNewReports since its last epoch.
func (a *Aggregator) sealLoop() {
	defer close(a.done)
	t := time.NewTicker(a.interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			for _, name := range a.names {
				_, _ = a.Seal(context.Background(), name, false)
			}
		}
	}
}

// apply merges one push envelope under the tenant's sequencing protocol.
// It returns whether the delta was applied (false for the idempotent
// duplicate seq == last) and the shard's last applied sequence number —
// which a conflicting shard uses to resync.
//
// The duplicate/stale/gap rules only hold within one shard incarnation, so
// they apply only when the envelope's instance nonce matches the cursor's.
// A different nonce starting over at seq 1 is a restarted shard: its old
// in-memory state died with it, so its new deltas are genuinely fresh
// reports and the cursor is replaced. A different nonce mid-sequence can
// only be a duplicate shard ID (or a replay from a dead incarnation) and is
// rejected with ErrShardConflict — never duplicate-ACKed, which would make
// the pusher silently drop the delta as "already merged".
//
// One exception to the gap rule: a shard whose cursor was recovered from
// disk and not yet confirmed by a live push may gap forward once (see
// aggTenant.recovered) — a relaxed-sync crash can have lost the
// acknowledged tail, and the shard cannot re-ship deltas its baseline
// already moved past.
//
// A durable tenant journals the envelope's canonical bytes — append +
// fsync per the sync policy — BEFORE merging, so an acknowledged delta is
// never memory-only: if the journal write fails the delta is not merged
// and the push fails with a retryable journalError.
func (t *aggTenant) apply(env PushEnvelope, raw []byte) (applied bool, last uint64, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, known := t.shards[env.Shard]
	last = cur.seq
	restart := known && cur.nonce != env.Nonce
	if restart && env.Seq != 1 {
		return false, last, fmt.Errorf("dist: shard %q pushed seq %d under a new instance nonce (last applied %d from a previous instance — restarted shard or duplicate shard ID): %w",
			env.Shard, env.Seq, last, ErrShardConflict)
	}
	gapJump := false
	if !restart {
		switch {
		case known && env.Seq == last:
			// The retry of a push whose ACK was lost: already merged, ACK
			// again.
			return false, last, nil
		case env.Seq < last:
			return false, last, fmt.Errorf("dist: shard %q pushed seq %d, last applied %d: %w",
				env.Shard, env.Seq, last, ErrStaleSeq)
		case env.Seq > last+1:
			if !t.recovered[env.Shard] {
				return false, last, fmt.Errorf("dist: shard %q pushed seq %d, last applied %d: %w",
					env.Shard, env.Seq, last, ErrSeqGap)
			}
			gapJump = true
		}
	}
	if t.store != nil {
		if jerr := t.store.Append(raw); jerr != nil {
			return false, last, &journalError{jerr}
		}
	}
	if err := t.coll.Merge(env.Delta); err != nil {
		return false, last, err
	}
	t.shards[env.Shard] = shardCursor{nonce: env.Nonce, seq: env.Seq}
	delete(t.recovered, env.Shard)
	if gapJump {
		t.gapsAccepted++
	}
	return true, env.Seq, nil
}

func (a *Aggregator) handlePush(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	t, ok := a.tenants[name]
	if !ok {
		unknownTenant(w, name)
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	var env PushEnvelope
	if err := env.UnmarshalBinary(body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	applied, last, err := t.apply(env, body)
	if err != nil {
		var jerr *journalError
		if errors.As(err, &jerr) {
			// A disk failure is a transient outage from the shard's point of
			// view: 503 keeps the envelope frozen in flight and retrying.
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, errStatus(err), pushAck{Last: last, Code: ackCode(err), Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, pushAck{Applied: applied, Last: last})
	if applied && a.minNew > 0 {
		// Threshold sealing: don't wait for the ticker once enough reports
		// accumulated. Runs in its own goroutine, detached from the request
		// context, so push latency never pays for estimator fan-out and a
		// client disconnect can't abort the replica updates mid-flight;
		// Close drains the WaitGroup.
		a.sealWG.Add(1)
		ctx := context.WithoutCancel(r.Context())
		go func() {
			defer a.sealWG.Done()
			_, _ = a.Seal(ctx, name, false)
		}()
	}
}

// ackCode maps a push-apply error to the ack's machine-readable code, so the
// shard can react without parsing messages.
func ackCode(err error) string {
	switch {
	case errors.Is(err, ErrStaleSeq):
		return "stale"
	case errors.Is(err, ErrSeqGap):
		return "gap"
	case errors.Is(err, ErrShardConflict):
		return "conflict"
	}
	return ""
}

// Seal exports the tenant's merged state, stamps it with the next epoch
// number, and fans it out to every replica. force seals whenever any new
// report arrived since the last epoch (and, for an empty tenant, even a
// zero-report first epoch so replicas can start serving priors); a
// scheduled seal (force=false) additionally requires MinNewReports.
//
// Sealing is also the durability compaction point: the sealed blob plus the
// shard cursors as of the export are persisted as the tenant's snapshot and
// the journal prefix they cover is dropped — so the journal only ever holds
// the deltas merged since the last sealed epoch.
func (a *Aggregator) Seal(ctx context.Context, tenant string, force bool) (SealResult, error) {
	t, ok := a.tenants[tenant]
	if !ok {
		return SealResult{}, fmt.Errorf("dist: unknown tenant %q", tenant)
	}
	// One seal at a time per tenant (see aggTenant.sealMu). A seal that
	// queued behind another re-checks freshness below and usually no-ops.
	t.sealMu.Lock()
	defer t.sealMu.Unlock()
	t.mu.Lock()
	fresh := t.coll.Received() - t.sealedReports
	threshold := 1
	if !force && a.minNew > 1 {
		threshold = a.minNew
	}
	if fresh < threshold && !(force && t.epoch == 0) {
		res := SealResult{Tenant: tenant, Epoch: t.epoch, Reports: t.sealedReports}
		t.mu.Unlock()
		return res, nil
	}
	st, err := t.coll.State()
	if err != nil {
		t.lastSealErr = err.Error()
		t.mu.Unlock()
		return SealResult{}, err
	}
	t.epoch++
	epoch := t.epoch
	t.sealedReports = st.Received()
	// Cursors and journal offset are captured under the same lock as the
	// state export, so the snapshot is exactly consistent with it: every
	// journal byte below off describes a delta already inside st.
	var cursors map[string]shardCursor
	var off int64
	if t.store != nil {
		cursors = make(map[string]shardCursor, len(t.shards))
		for id, cur := range t.shards {
			cursors[id] = cur
		}
		off = t.store.Offset()
	}
	t.mu.Unlock()

	blob, err := privmdr.EncodeSnapshot(st, epoch)
	if err != nil {
		t.setSealErr(err.Error())
		return SealResult{}, err
	}
	t.mu.Lock()
	t.sealedBlob = blob
	t.mu.Unlock()
	if t.store != nil {
		snap := aggSnapshot{epoch: epoch, sealedReports: uint64(st.Received()), cursors: cursors, sealed: blob}
		if err := t.store.Compact(snap, off); err != nil {
			// The epoch is sealed and served either way; a failed compaction
			// only means a longer journal replay next restart.
			t.setSealErr(fmt.Sprintf("epoch %d: compaction: %s", epoch, err))
		}
	}
	res := SealResult{Tenant: tenant, Sealed: true, Epoch: epoch, Reports: st.Received()}
	res.Fanout, res.Errors = a.fanout(ctx, tenant, blob, epoch)
	if len(res.Errors) > 0 {
		t.setSealErr(fmt.Sprintf("epoch %d: %s", epoch, res.Errors[0]))
	} else {
		t.setSealErr("")
	}
	return res, nil
}

func (t *aggTenant) setSealErr(msg string) {
	t.mu.Lock()
	t.lastSealErr = msg
	t.mu.Unlock()
}

// fanout pushes a sealed snapshot to every replica concurrently. A 409 from
// a replica counts as success: it already serves this epoch or a newer one
// (a racing seal won), either way it is not behind.
//
// A replica at fanDeadAfter consecutive failures is probed with a single
// attempt instead of the transport's full retry schedule, so one dead
// replica cannot slow every seal by four timeouts — it catches up through
// GET /epoch/latest, and the first probe that lands restores full retries.
func (a *Aggregator) fanout(ctx context.Context, tenant string, blob []byte, epoch uint64) (ok int, errs []string) {
	if len(a.replicas) == 0 {
		return 0, nil
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, rep := range a.replicas {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep.mu.Lock()
			attempts := 0 // transport default
			if rep.fails >= fanDeadAfter {
				attempts = 1
				rep.skipped++
			}
			rep.mu.Unlock()
			url := rep.url + "/v1/" + tenant + "/epoch"
			status, body, err := a.tr.postN(ctx, url, "application/octet-stream", blob, attempts)
			var failure string
			switch {
			case err != nil:
				failure = err.Error()
			case status >= 200 && status < 300, status == http.StatusConflict:
			default:
				failure = fmt.Sprintf("dist: %s: %d %s", url, status, body)
			}
			rep.mu.Lock()
			if failure == "" {
				rep.fails = 0
				rep.lastErr = ""
				if epoch > rep.epoch {
					rep.epoch = epoch
				}
			} else {
				rep.fails++
				rep.lastErr = failure
			}
			rep.mu.Unlock()
			mu.Lock()
			defer mu.Unlock()
			if failure == "" {
				ok++
			} else {
				errs = append(errs, failure)
			}
		}()
	}
	wg.Wait()
	return ok, errs
}

// handleEpochLatest serves the last sealed epoch's PMSS blob — the replica
// catch-up path: a cold-started or fan-out-missed replica pulls it and
// installs through its strictly-newer epoch gate. 404 before the first seal.
func (a *Aggregator) handleEpochLatest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	t, ok := a.tenants[name]
	if !ok {
		unknownTenant(w, name)
		return
	}
	t.mu.Lock()
	blob := t.sealedBlob
	t.mu.Unlock()
	if blob == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("dist: tenant %q has no sealed epoch yet", name))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(blob)
}

// State exports a tenant's merged collector state.
func (a *Aggregator) State(tenant string) (privmdr.CollectorState, error) {
	t, ok := a.tenants[tenant]
	if !ok {
		return privmdr.CollectorState{}, fmt.Errorf("dist: unknown tenant %q", tenant)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.coll.State()
}

func (a *Aggregator) handleSeal(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if _, ok := a.tenants[name]; !ok {
		unknownTenant(w, name)
		return
	}
	res, err := a.Seal(r.Context(), name, true)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (a *Aggregator) handleState(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	t, ok := a.tenants[name]
	if !ok {
		unknownTenant(w, name)
		return
	}
	t.mu.Lock()
	st, err := t.coll.State()
	t.mu.Unlock()
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	blob, err := st.MarshalBinary()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(blob)
}

func (a *Aggregator) handleParams(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	t, ok := a.tenants[name]
	if !ok {
		unknownTenant(w, name)
		return
	}
	writeJSON(w, http.StatusOK, privmdr.ServerParams{Mechanism: t.proto.Name(), Params: t.proto.Params()})
}

func (a *Aggregator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	t, ok := a.tenants[name]
	if !ok {
		unknownTenant(w, name)
		return
	}
	t.mu.Lock()
	shards := make(map[string]uint64, len(t.shards))
	for id, cur := range t.shards {
		shards[id] = cur.seq
	}
	status := AggregatorStatus{
		Role:          "aggregator",
		Tenant:        t.name,
		Mechanism:     t.proto.Name(),
		Received:      t.coll.Received(),
		Epoch:         t.epoch,
		SealedReports: t.sealedReports,
		Staleness:     t.coll.Received() - t.sealedReports,
		Shards:        shards,
		LastSealError: t.lastSealErr,
		Durable:       t.store != nil,
		RecoveredGaps: t.gapsAccepted,
	}
	t.mu.Unlock()
	for _, rep := range a.replicas {
		rep.mu.Lock()
		status.Replicas = append(status.Replicas, ReplicaFanoutStatus{
			URL:                 rep.url,
			Epoch:               rep.epoch,
			ConsecutiveFailures: rep.fails,
			Skipped:             rep.skipped,
			LastError:           rep.lastErr,
		})
		rep.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, status)
}
