// Package dist is the distributed serving tier: it scales one privmdr
// deployment from "one process" to a horizontally scalable service by wiring
// three roles over HTTP, all of them multi-tenant (one process hosts many
// named deployments under /v1/{tenant}/...):
//
//   - Ingest shards (NewShard) sit at the edge and accept POST
//     /v1/{tenant}/reports exactly like a QueryServer — each tenant's
//     reports fold into the shard's local collector. A background pusher
//     periodically ships the *delta* since the last push to the aggregator:
//     an O(groups×domain) count-vector difference (DiffStates on v2 states)
//     for every mechanism — all seven stream — with one carve-out: a capped
//     HIO deployment's over-cap groups ride the v3 delta as the report
//     suffix received since the last push, while its other groups still
//     diff as count vectors.
//     Every push carries the shard's ID, a random per-incarnation instance
//     nonce, and a monotonic sequence number, so a retried push is
//     idempotent and a restarted shard is never confused with its previous
//     life. An unacknowledged delta is frozen in flight and retried
//     byte-identically (with backoff) until the aggregator acknowledges it;
//     reports that arrive meanwhile ride the next delta, so nothing is lost
//     even when the aggregator applied a push whose ACK never came back.
//
//   - The aggregator / epoch coordinator (NewAggregator) merges shard deltas
//     into one collector per tenant — the standard CollectorState Merge, so
//     any shard count and any push interleaving reconstructs exactly the
//     union multiset — and seals epochs on a schedule, on a report
//     threshold, or on demand (POST /v1/{tenant}/seal). Sealing exports the
//     collector state non-destructively, stamps it with the next epoch
//     number, and fans it out to every configured query replica.
//
//   - Query replicas (NewReplica) are stateless: they hold no collector,
//     only the latest installed epoch estimator in an atomic pointer —
//     exactly the live QueryServer's serving model. POST /v1/{tenant}/epoch
//     installs a sealed epoch (older epochs are rejected, so fan-outs may
//     race or repeat freely); POST /v1/{tenant}/query answers from the
//     current epoch on AnswerBatch's worker pool.
//
// NewTenantServer is the degenerate single-node topology: one process
// hosting N independent live QueryServers behind the same /v1/{tenant}/...
// routing, for deployments that need multi-tenancy before they need
// distribution.
//
// The golden invariant is preserved end to end: for any shard count, any
// report partition, any push interleaving, and any number of retried or
// duplicated pushes, a sealed epoch answers every query bit-identically to a
// single monolithic collector that ingested the same report multiset. The
// deltas sum to the union because count-vector merges are integer vector
// adds and report merges are multiset unions — the same order-independence
// the CollectorState design pinned for manual sharding.
package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"privmdr"
)

// Sentinel errors for the distributed wire protocol, matched with errors.Is.
// They all map to 409 Conflict: the request was well-formed but contradicts
// the receiver's sequencing or epoch state.
var (
	// ErrStaleSeq reports a push whose sequence number is older than the
	// last one applied for that shard — a confused or rolled-back shard.
	ErrStaleSeq = errors.New("dist: push sequence number is stale")
	// ErrSeqGap reports a push whose sequence number skips ahead of the next
	// expected one — the aggregator is missing deltas (it restarted, or the
	// shard re-baselined without it) and the shard must resync.
	ErrSeqGap = errors.New("dist: push sequence number skips ahead")
	// ErrShardConflict reports a mid-sequence push under an instance nonce
	// that does not match the one whose pushes built the shard's applied
	// history: either two live shards share an ID, or a restarted shard's
	// state diverged from what the aggregator already merged. The aggregator
	// cannot merge such a delta without risking double counting, so it
	// rejects it and the shard surfaces the conflict loudly instead of
	// retrying quietly forever.
	ErrShardConflict = errors.New("dist: shard instance conflicts with applied push history")
	// ErrStaleEpoch reports an epoch install that is not newer than the
	// epoch a replica is already serving.
	ErrStaleEpoch = errors.New("dist: epoch is not newer than the serving epoch")
)

// maxBody caps request bodies on every dist endpoint, matching the
// QueryServer's report-frame budget.
const maxBody = 64 << 20

// errStatus maps a distributed-endpoint error to its HTTP status, extending
// the QueryServer's contract: 413 for oversized bodies; 409 for well-formed
// requests that conflict with sequencing, epochs, the deployment, or the
// lifecycle (stale/gapped push seqs, stale epochs, state mismatches, after
// finalize); 400 for everything malformed.
func errStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	if errors.Is(err, ErrStaleSeq) || errors.Is(err, ErrSeqGap) || errors.Is(err, ErrShardConflict) ||
		errors.Is(err, ErrStaleEpoch) ||
		errors.Is(err, privmdr.ErrStateMismatch) || errors.Is(err, privmdr.ErrCollectorFinalized) {
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// readBody drains a capped request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
}

// unknownTenant writes the 404 every role returns for a tenant outside its
// topology.
func unknownTenant(w http.ResponseWriter, name string) {
	writeError(w, http.StatusNotFound, fmt.Errorf("dist: unknown tenant %q", name))
}
