package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"hash/fnv"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"privmdr"
)

// chaosProxy is the fault-injection harness: a seeded, deterministic HTTP
// middleware standing between the dist roles, injecting the partition
// repertoire — connection drops (aborted before the handler runs), 5xx
// answers, added latency, and response truncation (the handler DID run, the
// client never learns) — plus a "down" window while the role behind it is
// killed and restarted. Every probability roll comes from one seeded PCG
// stream under a mutex, so a failing run replays with the same seed
// (PRIVMDR_CHAOS_SEED overrides the default).
type chaosProxy struct {
	srv *httptest.Server

	mu            sync.Mutex
	rng           *rand.Rand
	on            bool
	deltaVersions map[int]int // state versions of pushed deltas crossing this leg

	inner atomicHandler
}

// atomicHandler is a swappable handler slot; nil means the role is down.
type atomicHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (a *atomicHandler) load() http.Handler {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.h
}

func (a *atomicHandler) store(h http.Handler) {
	a.mu.Lock()
	a.h = h
	a.mu.Unlock()
}

func newChaosProxy(t *testing.T, seed uint64) *chaosProxy {
	t.Helper()
	c := &chaosProxy{rng: rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15)), on: true}
	c.srv = httptest.NewServer(c)
	t.Cleanup(c.srv.Close)
	return c
}

// quiet turns all fault injection off (the verification phase).
func (c *chaosProxy) quiet() {
	c.mu.Lock()
	c.on = false
	c.mu.Unlock()
}

// faults per-request, from the seeded stream.
const (
	chaosAbort    = 0.06 // drop the connection before the handler runs
	chaos503      = 0.08 // answer 503 without running the handler
	chaosTruncate = 0.05 // run the handler, send half the response, drop
	chaosLatency  = 0.20 // add 0.5–2.5 ms before the handler
)

func (c *chaosProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Record the state version of every pushed delta crossing this leg —
	// whether or not a fault then eats the request — so the test can assert
	// the wire shape: now that all seven mechanisms stream, every delta is a
	// v2 count vector and no report suffix is ever shipped.
	if strings.HasSuffix(r.URL.Path, "/push") {
		if body, err := io.ReadAll(r.Body); err == nil {
			_ = r.Body.Close()
			r.Body = io.NopCloser(bytes.NewReader(body))
			var env PushEnvelope
			if env.UnmarshalBinary(body) == nil {
				c.mu.Lock()
				if c.deltaVersions == nil {
					c.deltaVersions = map[int]int{}
				}
				c.deltaVersions[env.Delta.Version]++
				c.mu.Unlock()
			}
		}
	}
	h := c.inner.load()
	if h == nil {
		http.Error(w, "injected: role is down for restart", http.StatusServiceUnavailable)
		return
	}
	var abort, e503, trunc bool
	var delay time.Duration
	c.mu.Lock()
	if c.on {
		roll := c.rng.Float64()
		switch {
		case roll < chaosAbort:
			abort = true
		case roll < chaosAbort+chaos503:
			e503 = true
		case roll < chaosAbort+chaos503+chaosTruncate:
			trunc = true
		case roll < chaosAbort+chaos503+chaosTruncate+chaosLatency:
			delay = 500*time.Microsecond + time.Duration(c.rng.Int64N(int64(2*time.Millisecond)))
		}
	}
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	switch {
	case abort:
		panic(http.ErrAbortHandler) // the client sees a dropped connection
	case e503:
		http.Error(w, "injected: 503 burst", http.StatusServiceUnavailable)
	case trunc:
		// The cruelest fault: the request WAS processed (a push may have
		// been applied and journaled), but the response is cut mid-body, so
		// the client cannot tell — it must retry the identical envelope and
		// rely on duplicate-ACK idempotency.
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		for k, v := range rec.Header() {
			w.Header()[k] = v
		}
		w.Header().Del("Content-Length")
		w.WriteHeader(rec.Code)
		body := rec.Body.Bytes()
		_, _ = w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	default:
		h.ServeHTTP(w, r)
	}
}

// chaosSeed derives the per-mechanism seed, overridable for replay with
// PRIVMDR_CHAOS_SEED.
func chaosSeed(t *testing.T, mech string) uint64 {
	base := uint64(20260808)
	if s := os.Getenv("PRIVMDR_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("PRIVMDR_CHAOS_SEED=%q: %v", s, err)
		}
		base = v
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(mech))
	return base ^ h.Sum64()
}

// TestChaosTopology drives the full topology through injected faults, per
// mechanism under -race: two shards push a partitioned report stream through
// a chaos middleware to a crash-durable aggregator that is killed and
// restarted from disk twice mid-traffic, the replica is killed and
// cold-restarted (catching up over its own chaotic leg), and one shard
// restarts after a flush (its bounded-loss contract: only already-flushed
// reports survive a shard death, so the harness flushes first). When the
// dust settles, the aggregator must hold every report exactly once and both
// the surviving replica and a cold-started one must answer the workload
// bit-identically to a monolithic collector — the golden invariant, now
// under fire.
func TestChaosTopology(t *testing.T) {
	const (
		n       = 600
		nShards = 2
		batch   = 60
	)
	ds := distDataset(t, n)
	workload := distWorkload(t, ds.D(), ds.C)
	queryBody, err := json.Marshal(privmdr.QueryRequest{Queries: workload})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range privmdr.Mechanisms() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			t.Parallel()
			p := privmdr.Params{N: n, D: ds.D(), C: ds.C, Eps: 1.0, Seed: 210}
			proto, err := m.Protocol(p)
			if err != nil {
				t.Fatal(err)
			}
			reports := clientReports(t, proto, ds)
			dataDir := t.TempDir()
			topo := &Topology{Tenants: []TenantConfig{{Name: "census", Mechanism: m.Name(), Params: p}}}

			seed := chaosSeed(t, m.Name())
			aggChaos := newChaosProxy(t, seed)
			repChaos := newChaosProxy(t, seed+1)
			topo.Aggregator = aggChaos.srv.URL
			topo.Replicas = []string{repChaos.srv.URL}

			// The replica pulls its catch-up through the aggregator's chaos
			// leg, so both directions of its traffic are under fire.
			repOpts := ReplicaOptions{Aggregator: aggChaos.srv.URL, Poll: 25 * time.Millisecond}
			rep, err := NewReplica(topo, repOpts)
			if err != nil {
				t.Fatal(err)
			}
			repChaos.inner.store(rep)

			agg, err := NewAggregator(topo, SealOptions{DataDir: dataDir})
			if err != nil {
				t.Fatal(err)
			}
			aggChaos.inner.store(agg)

			// Shard goroutines: ingest a batch, flush it (retrying through
			// the chaos), repeat. Shard 0 kills and restarts itself midway —
			// after a flush, per the bounded-loss contract.
			flushChaos := func(s *Shard) bool {
				deadline := time.Now().Add(30 * time.Second)
				for {
					if err := s.Flush(context.Background()); err == nil {
						return true
					} else if time.Now().After(deadline) {
						t.Errorf("flush never succeeded through the chaos: %v", err)
						return false
					}
					time.Sleep(10 * time.Millisecond)
				}
			}
			var wg sync.WaitGroup
			for i := 0; i < nShards; i++ {
				part := reports[i*n/nShards : (i+1)*n/nShards]
				wg.Add(1)
				go func(i int, part []privmdr.Report) {
					defer wg.Done()
					shard, err := NewShard(topo, ShardOptions{ID: "edge-" + strconv.Itoa(i)})
					if err != nil {
						t.Error(err)
						return
					}
					defer func() { _ = shard.Close() }()
					srv := httptest.NewServer(shard)
					defer func() { srv.Close() }()
					nBatches := (len(part) + batch - 1) / batch
					for b := 0; b < nBatches; b++ {
						ingestHTTP(t, srv.URL, "census", part[b*batch:min((b+1)*batch, len(part))])
						if !flushChaos(shard) {
							return
						}
						if i == 0 && b == nBatches/2 {
							// Kill this shard and restart it: a fresh
							// instance nonce, an empty local collector, and
							// a seq-1 push the aggregator must accept as a
							// legitimate restart, not a duplicate.
							_ = shard.Close()
							srv.Close()
							shard, err = NewShard(topo, ShardOptions{ID: "edge-0"})
							if err != nil {
								t.Error(err)
								return
							}
							srv = httptest.NewServer(shard)
						}
						time.Sleep(15 * time.Millisecond)
					}
				}(i, part)
			}

			// The reaper: kill and restart the aggregator twice mid-traffic,
			// with a mid-run seal (compaction + chaotic fan-out) between the
			// kills, and kill/cold-restart the replica once.
			for cycle := 0; cycle < 2; cycle++ {
				time.Sleep(40 * time.Millisecond)
				aggChaos.inner.store(nil) // down: new pushes bounce as 503
				time.Sleep(20 * time.Millisecond)
				_ = agg.Close() // release journal fds; in-flight appends finish or fail first
				agg, err = NewAggregator(topo, SealOptions{DataDir: dataDir})
				if err != nil {
					t.Fatalf("aggregator restart %d: %v", cycle, err)
				}
				aggChaos.inner.store(agg)
				if cycle == 0 {
					_, _ = agg.Seal(context.Background(), "census", true)
					// Replica kill: a cold instance must rebuild entirely
					// from its catch-up poll.
					repChaos.inner.store(nil)
					_ = rep.Close()
					rep, err = NewReplica(topo, repOpts)
					if err != nil {
						t.Fatal(err)
					}
					repChaos.inner.store(rep)
				}
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
			t.Cleanup(func() { _ = agg.Close() })
			t.Cleanup(func() { _ = rep.Close() })

			// Verification, with the chaos quieted: every report exactly
			// once, no crash-caused gaps (strict fsync mode), and the final
			// epoch bit-identical on both a pushed-to and a cold replica.
			aggChaos.quiet()
			repChaos.quiet()
			st, err := agg.State("census")
			if err != nil {
				t.Fatal(err)
			}
			if st.Received() != n {
				t.Fatalf("aggregator holds %d reports after the chaos, want %d (lost or double-counted)", st.Received(), n)
			}
			res, err := agg.Seal(context.Background(), "census", true)
			if err != nil {
				t.Fatal(err)
			}
			if res.Reports != n {
				t.Fatalf("final epoch %d covers %d reports, want %d", res.Epoch, res.Reports, n)
			}
			var hs AggregatorStatus
			getJSON(t, aggChaos.srv.URL+"/v1/census/healthz", &hs)
			if hs.RecoveredGaps != 0 {
				t.Fatalf("strict-mode chaos run accepted %d recovered gaps, want 0", hs.RecoveredGaps)
			}

			want := monolithicAnswers(t, proto, reports, workload)
			check := func(label string, r *Replica) {
				t.Helper()
				deadline := time.Now().Add(10 * time.Second)
				for {
					if cur := r.tenants["census"].cur.Load(); cur != nil && cur.epoch >= res.Epoch {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("%s never reached epoch %d", label, res.Epoch)
					}
					time.Sleep(10 * time.Millisecond)
				}
				srv := httptest.NewServer(r)
				defer srv.Close()
				code, body := postBytes(t, srv.URL+"/v1/census/query", "application/json", queryBody)
				if code != http.StatusOK {
					t.Fatalf("%s query: %d %s", label, code, body)
				}
				var qr privmdr.QueryResponse
				if err := json.Unmarshal(body, &qr); err != nil {
					t.Fatal(err)
				}
				for q := range want {
					if qr.Answers[q] != want[q] {
						t.Fatalf("%s query %d: %v != monolithic %v — invariant broken under chaos",
							label, q, qr.Answers[q], want[q])
					}
				}
			}
			check("surviving replica", rep)

			// The wire-shape half of the invariant: with HIO and LHIO
			// streaming, every mechanism's recovery traffic is v2 count-vector
			// deltas — no shard shipped a report suffix.
			aggChaos.mu.Lock()
			versions := make(map[int]int, len(aggChaos.deltaVersions))
			for v, cnt := range aggChaos.deltaVersions {
				versions[v] = cnt
			}
			aggChaos.mu.Unlock()
			if len(versions) == 0 {
				t.Fatal("chaos run recorded no pushed deltas")
			}
			for v, cnt := range versions {
				if v != 2 {
					t.Errorf("%d pushed deltas carried state version %d, want 2 (count vectors) for every mechanism", cnt, v)
				}
			}

			cold, err := NewReplica(topo, ReplicaOptions{Aggregator: aggChaos.srv.URL})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = cold.Close() })
			if err := cold.CatchUp(context.Background()); err != nil {
				t.Fatal(err)
			}
			check("cold replica", cold)
		})
	}
}
