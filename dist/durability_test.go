package dist

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"privmdr"
)

// swapServer is a stable HTTP frontage over a swappable handler — the test
// stand-in for a fixed address whose process is killed and restarted behind
// it. While no handler is installed (the "down" window) it answers 503,
// which is exactly what a connecting client sees as a transient outage.
func swapServer(t *testing.T) (*httptest.Server, *atomic.Pointer[http.Handler]) {
	t.Helper()
	var cur atomic.Pointer[http.Handler]
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := cur.Load()
		if h == nil {
			http.Error(w, "down for restart", http.StatusServiceUnavailable)
			return
		}
		(*h).ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &cur
}

func setHandler(p *atomic.Pointer[http.Handler], h http.Handler) {
	if h == nil {
		p.Store(nil)
		return
	}
	p.Store(&h)
}

// monolithicAnswers is the golden reference: one collector over the whole
// report multiset, finalized and queried.
func monolithicAnswers(t *testing.T, proto privmdr.Protocol, reports []privmdr.Report, queries []privmdr.Query) []float64 {
	t.Helper()
	mono, err := proto.NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	if err := mono.SubmitBatch(reports); err != nil {
		t.Fatal(err)
	}
	est, err := mono.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	want, err := privmdr.AnswerBatch(est, queries)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestAggregatorRestartDurable is the kill-and-restart contract, per
// mechanism under -race and in both recovery shapes (journal-only, and
// snapshot + journal when an epoch sealed before the kill): an aggregator
// restarted from its data dir must hold exactly the acknowledged reports,
// shards must resume at their prior sequence cursor — the post-restart push
// carries the next seq and a delta-sized report count, never a cumulative
// re-baseline — and the next sealed epoch must be bit-identical to a
// monolithic collector over the same report multiset.
func TestAggregatorRestartDurable(t *testing.T) {
	const n = 900
	ds := distDataset(t, n)
	workload := distWorkload(t, ds.D(), ds.C)
	queryBody, err := json.Marshal(privmdr.QueryRequest{Queries: workload})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range privmdr.Mechanisms() {
		m := m
		for _, sealBeforeKill := range []bool{false, true} {
			name := m.Name() + "/journal-only"
			if sealBeforeKill {
				name = m.Name() + "/snapshot+journal"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				p := privmdr.Params{N: n, D: ds.D(), C: ds.C, Eps: 1.0, Seed: 210}
				proto, err := m.Protocol(p)
				if err != nil {
					t.Fatal(err)
				}
				reports := clientReports(t, proto, ds)
				dataDir := t.TempDir()
				topo := &Topology{Tenants: []TenantConfig{{Name: "census", Mechanism: m.Name(), Params: p}}}

				rep, err := NewReplica(topo, ReplicaOptions{})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { _ = rep.Close() })
				repSrv := httptest.NewServer(rep)
				t.Cleanup(repSrv.Close)
				topo.Replicas = []string{repSrv.URL}

				aggSrv, aggCur := swapServer(t)
				topo.Aggregator = aggSrv.URL
				agg1, err := NewAggregator(topo, SealOptions{DataDir: dataDir})
				if err != nil {
					t.Fatal(err)
				}
				setHandler(aggCur, agg1)

				shard, err := NewShard(topo, ShardOptions{ID: "edge-0"})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { _ = shard.Close() })
				shardSrv := httptest.NewServer(shard)
				t.Cleanup(shardSrv.Close)

				// Two acknowledged deltas before the kill.
				third := n / 3
				ingestHTTP(t, shardSrv.URL, "census", reports[:third])
				if res, err := shard.FlushTenant(context.Background(), "census"); err != nil || res.Seq != 1 {
					t.Fatalf("first flush: %+v, %v", res, err)
				}
				if sealBeforeKill {
					code, body := postBytes(t, aggSrv.URL+"/v1/census/seal", "application/json", nil)
					if code != http.StatusOK {
						t.Fatalf("pre-kill seal: %d %s", code, body)
					}
				}
				ingestHTTP(t, shardSrv.URL, "census", reports[third:2*third])
				if res, err := shard.FlushTenant(context.Background(), "census"); err != nil || res.Seq != 2 {
					t.Fatalf("second flush: %+v, %v", res, err)
				}

				// Kill: abandon the instance without Close — strict-mode
				// durability means every acknowledged delta is already
				// fsynced, so a clean shutdown must not be needed.
				setHandler(aggCur, nil)
				oldStore := agg1.tenants["census"].store
				agg2, err := NewAggregator(topo, SealOptions{DataDir: dataDir})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { _ = agg2.Close() })
				_ = oldStore.Close() // release the dead instance's fds only after recovery
				setHandler(aggCur, agg2)

				// Recovery must hold every acknowledged report and the cursor.
				var hs AggregatorStatus
				getJSON(t, aggSrv.URL+"/v1/census/healthz", &hs)
				if hs.Received != 2*third {
					t.Fatalf("recovered %d reports, want %d", hs.Received, 2*third)
				}
				if !hs.Durable || hs.RecoveredGaps != 0 {
					t.Fatalf("recovered healthz: durable=%v gaps=%d", hs.Durable, hs.RecoveredGaps)
				}
				if hs.Shards["edge-0"] != 2 {
					t.Fatalf("recovered cursor %d, want 2", hs.Shards["edge-0"])
				}
				if sealBeforeKill && hs.Epoch != 1 {
					t.Fatalf("recovered epoch %d, want 1", hs.Epoch)
				}

				// The shard resumes at its next seq with a delta-sized push —
				// a cumulative re-baseline would double-count everything.
				ingestHTTP(t, shardSrv.URL, "census", reports[2*third:])
				res, err := shard.FlushTenant(context.Background(), "census")
				if err != nil {
					t.Fatalf("post-restart flush: %v", err)
				}
				if res.Seq != 3 {
					t.Fatalf("post-restart push sealed seq %d, want 3 (re-baseline?)", res.Seq)
				}
				if want := n - 2*third; res.Reports != want {
					t.Fatalf("post-restart push carried %d reports, want the %d-report delta", res.Reports, want)
				}

				// Seal; the fanned-out epoch must answer bit-identically to
				// the monolithic collector.
				var sealed SealResult
				code, body := postBytes(t, aggSrv.URL+"/v1/census/seal", "application/json", nil)
				if code != http.StatusOK {
					t.Fatalf("final seal: %d %s", code, body)
				}
				if err := json.Unmarshal(body, &sealed); err != nil {
					t.Fatal(err)
				}
				if !sealed.Sealed || sealed.Reports != n || sealed.Fanout != 1 {
					t.Fatalf("final seal: %+v", sealed)
				}
				want := monolithicAnswers(t, proto, reports, workload)
				var resp privmdr.QueryResponse
				code, body = postBytes(t, repSrv.URL+"/v1/census/query", "application/json", queryBody)
				if code != http.StatusOK {
					t.Fatalf("replica query: %d %s", code, body)
				}
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Fatal(err)
				}
				for q := range want {
					if resp.Answers[q] != want[q] {
						t.Fatalf("query %d: %v != monolithic %v — invariant broken after restart",
							q, resp.Answers[q], want[q])
					}
				}
			})
		}
	}
}

// TestEpochLatestAndReplicaCatchUp pins the replica catch-up path: 404
// before the first seal, a decodable stamped snapshot after it, a
// cold-started replica serving via an explicit CatchUp (no fan-out needed),
// a polling replica converging on its own, and the blob surviving an
// aggregator restart.
func TestEpochLatestAndReplicaCatchUp(t *testing.T) {
	const n = 600
	ds := distDataset(t, n)
	p := privmdr.Params{N: n, D: ds.D(), C: ds.C, Eps: 1.0, Seed: 210}
	proto, err := privmdr.NewHDG().Protocol(p)
	if err != nil {
		t.Fatal(err)
	}
	reports := clientReports(t, proto, ds)
	workload := distWorkload(t, ds.D(), ds.C)
	queryBody, err := json.Marshal(privmdr.QueryRequest{Queries: workload})
	if err != nil {
		t.Fatal(err)
	}
	dataDir := t.TempDir()
	topo := &Topology{Tenants: []TenantConfig{{Name: "census", Mechanism: "HDG", Params: p}}}

	aggSrv, aggCur := swapServer(t)
	topo.Aggregator = aggSrv.URL // no Replicas: catch-up is the only path out
	agg, err := NewAggregator(topo, SealOptions{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	setHandler(aggCur, agg)

	// Before any seal: 404, and a catch-up finds nothing but is not an error.
	resp, err := http.Get(aggSrv.URL + "/v1/census/epoch/latest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("epoch/latest before first seal: %d, want 404", resp.StatusCode)
	}
	early, err := NewReplica(topo, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = early.Close() })
	if err := early.CatchUp(context.Background()); err != nil {
		t.Fatalf("catch-up before first seal: %v", err)
	}

	shard, err := NewShard(topo, ShardOptions{ID: "edge-0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = shard.Close() })
	shardSrv := httptest.NewServer(shard)
	t.Cleanup(shardSrv.Close)
	ingestHTTP(t, shardSrv.URL, "census", reports)
	if _, err := shard.FlushTenant(context.Background(), "census"); err != nil {
		t.Fatal(err)
	}
	code, body := postBytes(t, aggSrv.URL+"/v1/census/seal", "application/json", nil)
	if code != http.StatusOK {
		t.Fatalf("seal: %d %s", code, body)
	}

	// The served blob is the stamped PMSS snapshot.
	resp, err = http.Get(aggSrv.URL + "/v1/census/epoch/latest")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch/latest after seal: %d", resp.StatusCode)
	}
	st, epoch, err := privmdr.DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || st.Received() != n {
		t.Fatalf("epoch/latest blob: epoch %d, %d reports; want 1, %d", epoch, st.Received(), n)
	}

	want := monolithicAnswers(t, proto, reports, workload)
	checkReplica := func(label string, rep *Replica) {
		t.Helper()
		srv := httptest.NewServer(rep)
		defer srv.Close()
		var qr privmdr.QueryResponse
		code, body := postBytes(t, srv.URL+"/v1/census/query", "application/json", queryBody)
		if code != http.StatusOK {
			t.Fatalf("%s query: %d %s", label, code, body)
		}
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		for q := range want {
			if qr.Answers[q] != want[q] {
				t.Fatalf("%s query %d: %v != monolithic %v", label, q, qr.Answers[q], want[q])
			}
		}
	}

	// A cold replica catches up explicitly — no fan-out ever reached it.
	cold, err := NewReplica(topo, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cold.Close() })
	if err := cold.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	checkReplica("cold replica", cold)

	// A polling replica converges without any explicit call.
	polling, err := NewReplica(topo, ReplicaOptions{Poll: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = polling.Close() })
	deadline := time.Now().Add(5 * time.Second)
	for polling.tenants["census"].cur.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("polling replica never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	checkReplica("polling replica", polling)

	// Restart the aggregator: the sealed blob must come back from the
	// snapshot file so catch-up keeps working with no new seal.
	setHandler(aggCur, nil)
	if err := agg.Close(); err != nil {
		t.Fatal(err)
	}
	agg2, err := NewAggregator(topo, SealOptions{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agg2.Close() })
	setHandler(aggCur, agg2)
	rebooted, err := NewReplica(topo, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rebooted.Close() })
	if err := rebooted.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	checkReplica("post-restart cold replica", rebooted)
}

// TestFanoutSkipsDeadReplica pins the fan-out health contract: a replica
// that keeps failing is downgraded to a single-attempt probe after
// fanDeadAfter consecutive failures (no more full retry storms per seal),
// its state shows in healthz, and the first successful probe restores it.
func TestFanoutSkipsDeadReplica(t *testing.T) {
	const n = 400
	ds := distDataset(t, n)
	p := privmdr.Params{N: n, D: ds.D(), C: ds.C, Eps: 1.0, Seed: 210}
	proto, err := privmdr.NewUni().Protocol(p)
	if err != nil {
		t.Fatal(err)
	}
	reports := clientReports(t, proto, ds)
	topo := &Topology{Tenants: []TenantConfig{{Name: "census", Mechanism: "Uni", Params: p}}}

	live, err := NewReplica(topo, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = live.Close() })
	liveSrv := httptest.NewServer(live)
	t.Cleanup(liveSrv.Close)

	// The flaky replica: down (fast 500s) until revived.
	var revived atomic.Bool
	flaky, err := NewReplica(topo, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = flaky.Close() })
	flakySrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !revived.Load() {
			http.Error(w, "injected: replica down", http.StatusInternalServerError)
			return
		}
		flaky.ServeHTTP(w, r)
	}))
	t.Cleanup(flakySrv.Close)
	topo.Replicas = []string{liveSrv.URL, flakySrv.URL}

	agg, err := NewAggregator(topo, SealOptions{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agg.Close() })
	aggSrv := httptest.NewServer(agg)
	t.Cleanup(aggSrv.Close)
	topo.Aggregator = aggSrv.URL

	shard, err := NewShard(topo, ShardOptions{ID: "edge-0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = shard.Close() })
	shardSrv := httptest.NewServer(shard)
	t.Cleanup(shardSrv.Close)

	// One seal per slice: the dead replica burns its failure budget. One
	// slice of reports is held back for the post-revival seal.
	slice := n / (fanDeadAfter + 2)
	for i := 0; i < fanDeadAfter+1; i++ {
		ingestHTTP(t, shardSrv.URL, "census", reports[i*slice:(i+1)*slice])
		if _, err := shard.FlushTenant(context.Background(), "census"); err != nil {
			t.Fatal(err)
		}
		res, err := agg.Seal(context.Background(), "census", true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fanout != 1 || len(res.Errors) != 1 {
			t.Fatalf("seal %d: fanout=%d errors=%v, want the live replica only", i, res.Fanout, res.Errors)
		}
	}
	var hs AggregatorStatus
	getJSON(t, aggSrv.URL+"/v1/census/healthz", &hs)
	if len(hs.Replicas) != 2 {
		t.Fatalf("healthz lists %d replicas, want 2", len(hs.Replicas))
	}
	byURL := map[string]ReplicaFanoutStatus{}
	for _, r := range hs.Replicas {
		byURL[r.URL] = r
	}
	if s := byURL[liveSrv.URL]; s.ConsecutiveFailures != 0 || s.Epoch != uint64(fanDeadAfter+1) || s.LastError != "" {
		t.Fatalf("live replica status: %+v", s)
	}
	if s := byURL[flakySrv.URL]; s.ConsecutiveFailures < fanDeadAfter || s.Skipped == 0 || s.LastError == "" {
		t.Fatalf("dead replica status: %+v (want ≥%d failures, ≥1 skipped, an error)", s, fanDeadAfter)
	}

	// Revive: the next seal's single probe restores full service.
	revived.Store(true)
	ingestHTTP(t, shardSrv.URL, "census", reports[(fanDeadAfter+1)*slice:])
	if _, err := shard.FlushTenant(context.Background(), "census"); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Seal(context.Background(), "census", true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fanout != 2 || len(res.Errors) != 0 {
		t.Fatalf("post-revival seal: %+v", res)
	}
	var after AggregatorStatus // fresh value: omitempty fields must prove empty
	getJSON(t, aggSrv.URL+"/v1/census/healthz", &after)
	for _, r := range after.Replicas {
		if r.ConsecutiveFailures != 0 || r.LastError != "" {
			t.Fatalf("post-revival replica status: %+v", r)
		}
	}
}

// TestJournalTornTailBoundedLoss pins the relaxed-sync loss contract: when a
// crash destroys the acknowledged-but-unfsynced journal tail, the restarted
// aggregator comes back at the truncated prefix, and the shard's next push —
// a sequence gap, because its baseline moved past the lost delta — is
// accepted once with a cursor jump and surfaced as recovered_gaps, instead
// of wedging the shard forever. The gap acceptance is relaxed-mode only:
// TestStrictModeRejectsPostRestartGap pins the strict-mode rejection.
func TestJournalTornTailBoundedLoss(t *testing.T) {
	const n = 600
	ds := distDataset(t, n)
	p := privmdr.Params{N: n, D: ds.D(), C: ds.C, Eps: 1.0, Seed: 210}
	proto, err := privmdr.NewUni().Protocol(p)
	if err != nil {
		t.Fatal(err)
	}
	reports := clientReports(t, proto, ds)
	dataDir := t.TempDir()
	topo := &Topology{Tenants: []TenantConfig{{Name: "census", Mechanism: "Uni", Params: p}}}

	aggSrv, aggCur := swapServer(t)
	topo.Aggregator = aggSrv.URL
	// Relaxed sync: the mode whose crashes can actually lose an
	// acknowledged tail, and the only mode whose recovery arms the
	// gap-acceptance rule this test pins.
	relaxed := SealOptions{DataDir: dataDir, SyncInterval: 25 * time.Millisecond}
	agg1, err := NewAggregator(topo, relaxed)
	if err != nil {
		t.Fatal(err)
	}
	setHandler(aggCur, agg1)

	shard, err := NewShard(topo, ShardOptions{ID: "edge-0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = shard.Close() })
	shardSrv := httptest.NewServer(shard)
	t.Cleanup(shardSrv.Close)

	third := n / 3
	ingestHTTP(t, shardSrv.URL, "census", reports[:third])
	if _, err := shard.FlushTenant(context.Background(), "census"); err != nil {
		t.Fatal(err)
	}
	ingestHTTP(t, shardSrv.URL, "census", reports[third:2*third])
	if _, err := shard.FlushTenant(context.Background(), "census"); err != nil {
		t.Fatal(err)
	}

	// Kill the aggregator and destroy the last journal record — the
	// acknowledged tail a relaxed-sync crash would lose.
	setHandler(aggCur, nil)
	_ = agg1.tenants["census"].store.Close()
	wal := filepath.Join(dataDir, "census", "journal.wal")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	var offsets []int
	for at := 0; at < len(data); {
		_, k, err := decodeJournalRecord(data[at:])
		if err != nil {
			t.Fatalf("journal corrupt before the test touched it: %v", err)
		}
		offsets = append(offsets, at)
		at += k
	}
	if len(offsets) != 2 {
		t.Fatalf("journal holds %d records, want 2", len(offsets))
	}
	if err := os.Truncate(wal, int64(offsets[1])); err != nil {
		t.Fatal(err)
	}

	agg2, err := NewAggregator(topo, relaxed)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agg2.Close() })
	setHandler(aggCur, agg2)

	var hs AggregatorStatus
	getJSON(t, aggSrv.URL+"/v1/census/healthz", &hs)
	if hs.Received != third || hs.Shards["edge-0"] != 1 {
		t.Fatalf("after tail loss: received=%d cursor=%d, want %d and 1", hs.Received, hs.Shards["edge-0"], third)
	}

	// The shard (still at seq 2) pushes seq 3: a gap against the recovered
	// cursor at 1, accepted exactly because the cursor is recovery-born.
	ingestHTTP(t, shardSrv.URL, "census", reports[2*third:])
	res, err := shard.FlushTenant(context.Background(), "census")
	if err != nil {
		t.Fatalf("post-loss flush must be accepted (gap rule): %v", err)
	}
	if res.Seq != 3 {
		t.Fatalf("post-loss push seq %d, want 3", res.Seq)
	}
	getJSON(t, aggSrv.URL+"/v1/census/healthz", &hs)
	if want := third + (n - 2*third); hs.Received != want { // lost exactly delta 2
		t.Fatalf("after gap jump: received=%d, want %d (bounded loss of the lost delta only)", hs.Received, want)
	}
	if hs.RecoveredGaps != 1 {
		t.Fatalf("recovered_gaps=%d, want 1", hs.RecoveredGaps)
	}
	if hs.Shards["edge-0"] != 3 {
		t.Fatalf("cursor after gap jump %d, want 3", hs.Shards["edge-0"])
	}

	// Gap acceptance only covers recovery-born cursors: a shard the recovery
	// never saw gets the normal strict gap rejection for a mid-air sequence.
	env := PushEnvelope{Shard: "edge-new", Nonce: 12345, Seq: 9, Delta: sampleDeltaFor(t, proto)}
	raw, err := env.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	code, body := postBytes(t, aggSrv.URL+"/v1/census/push", "application/octet-stream", raw)
	if code != http.StatusConflict {
		t.Fatalf("unrecovered shard's gapped push: %d %s, want 409", code, body)
	}
	var ack pushAck
	if err := json.Unmarshal(body, &ack); err != nil || ack.Code != "gap" {
		t.Fatalf("unrecovered shard's gapped push ack: %s (err %v), want code \"gap\"", body, err)
	}
}

// TestStrictModeRejectsPostRestartGap pins the flip side of the bounded-loss
// contract: a strict-sync journal fsyncs every delta before its ACK, so no
// crash can lose an acknowledged push — a post-restart sequence gap is then
// a real protocol anomaly and must stay a hard 409, not be absorbed as a
// recovery cursor jump.
func TestStrictModeRejectsPostRestartGap(t *testing.T) {
	const n = 600
	ds := distDataset(t, n)
	p := privmdr.Params{N: n, D: ds.D(), C: ds.C, Eps: 1.0, Seed: 211}
	proto, err := privmdr.NewUni().Protocol(p)
	if err != nil {
		t.Fatal(err)
	}
	reports := clientReports(t, proto, ds)
	dataDir := t.TempDir()
	topo := &Topology{Tenants: []TenantConfig{{Name: "census", Mechanism: "Uni", Params: p}}}

	aggSrv, aggCur := swapServer(t)
	topo.Aggregator = aggSrv.URL
	agg1, err := NewAggregator(topo, SealOptions{DataDir: dataDir}) // strict: SyncInterval zero
	if err != nil {
		t.Fatal(err)
	}
	setHandler(aggCur, agg1)

	shard, err := NewShard(topo, ShardOptions{ID: "edge-0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = shard.Close() })
	shardSrv := httptest.NewServer(shard)
	t.Cleanup(shardSrv.Close)

	half := n / 2
	ingestHTTP(t, shardSrv.URL, "census", reports[:half])
	if _, err := shard.FlushTenant(context.Background(), "census"); err != nil {
		t.Fatal(err)
	}

	// Restart the aggregator from disk (no tampering — a strict journal has
	// no acknowledged tail to lose). The cursor is recovery-born either
	// way; strict mode must not arm gap acceptance for it.
	setHandler(aggCur, nil)
	_ = agg1.Close()
	agg2, err := NewAggregator(topo, SealOptions{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agg2.Close() })
	setHandler(aggCur, agg2)

	// A gapped push from the recovered shard's incarnation: seq 3 against a
	// recovered cursor at 1 claims a delta the journal never saw — under
	// strict sync that delta cannot have been lost, so hard-reject.
	env := PushEnvelope{Shard: "edge-0", Nonce: shard.nonce, Seq: 3, Delta: sampleDeltaFor(t, proto)}
	raw, err := env.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	code, body := postBytes(t, aggSrv.URL+"/v1/census/push", "application/octet-stream", raw)
	if code != http.StatusConflict {
		t.Fatalf("strict-mode post-restart gapped push: %d %s, want 409", code, body)
	}
	var ack pushAck
	if err := json.Unmarshal(body, &ack); err != nil || ack.Code != "gap" {
		t.Fatalf("strict-mode gapped push ack: %s (err %v), want code \"gap\"", body, err)
	}
	var hs AggregatorStatus
	getJSON(t, aggSrv.URL+"/v1/census/healthz", &hs)
	if hs.RecoveredGaps != 0 {
		t.Fatalf("strict-mode restart accepted %d recovered gaps, want 0", hs.RecoveredGaps)
	}

	// The in-order push still lands: recovery itself is intact.
	ingestHTTP(t, shardSrv.URL, "census", reports[half:])
	res, err := shard.FlushTenant(context.Background(), "census")
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 2 {
		t.Fatalf("post-restart in-order push seq %d, want 2", res.Seq)
	}
	getJSON(t, aggSrv.URL+"/v1/census/healthz", &hs)
	if hs.Received != n {
		t.Fatalf("after strict restart + resume: received=%d, want %d", hs.Received, n)
	}
}

// sampleDeltaFor builds a tiny one-report delta under proto, for crafting
// hand-rolled envelopes.
func sampleDeltaFor(t *testing.T, proto privmdr.Protocol) privmdr.CollectorState {
	t.Helper()
	coll, err := proto.NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	a, err := proto.Assignment(0)
	if err != nil {
		t.Fatal(err)
	}
	record := make([]int, proto.Params().D)
	rep, err := proto.ClientReport(a, record, privmdr.ClientRand(proto.Params(), 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := coll.Submit(rep); err != nil {
		t.Fatal(err)
	}
	st, err := coll.(privmdr.StatefulCollector).State()
	if err != nil {
		t.Fatal(err)
	}
	return st
}
