package dist

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"privmdr"
)

// ShardOptions configure one ingest shard.
type ShardOptions struct {
	// ID is the shard's stable identity in push envelopes (required, ≤ 128
	// chars). The aggregator tracks one sequence counter per ID, so two live
	// shards must never share one.
	ID string
	// Aggregator overrides the topology's aggregator base URL.
	Aggregator string
	// PushInterval is how often the background pusher ships deltas. Zero
	// disables it: deltas then move only through Flush or POST
	// /v1/{tenant}/push.
	PushInterval time.Duration
	// MinPush is how many un-shipped reports a *scheduled* push requires
	// before paying for a delta (≤ 1 means any). Forced pushes (Flush, POST
	// /push) ignore it; every push skips when nothing new arrived.
	MinPush int
	// Timeout bounds each outbound push attempt (default 10s).
	Timeout time.Duration
}

// Shard is the edge ingest role: a multi-tenant report sink whose tenants
// each aggregate into a local collector, plus a pusher that ships
// per-tenant state deltas to the aggregator with idempotent sequence
// numbers and retry/backoff. Endpoints per tenant:
//
//	POST /v1/{tenant}/reports — binary report frame, exactly like a
//	                            QueryServer (the shard reuses one per tenant)
//	GET  /v1/{tenant}/params  — public deployment parameters
//	GET  /v1/{tenant}/state   — the local (un-pushed + pushed) state export
//	GET  /v1/{tenant}/healthz — ShardStatus: received, pushed, pending lag
//	POST /v1/{tenant}/push    — force a delta push now
type Shard struct {
	id string
	// nonce is this incarnation's random instance nonce, carried in every
	// push envelope so the aggregator can tell a retry from this process
	// apart from a restarted or duplicate shard reusing the ID.
	nonce   uint64
	agg     string
	tenants map[string]*shardTenant
	names   []string
	mux     *http.ServeMux
	tr      *transport

	interval time.Duration
	minPush  int

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{} // closed when the background pusher exits; nil without one
}

// shardTenant is one tenant's collector plus its push bookkeeping.
type shardTenant struct {
	name string
	qs   *privmdr.QueryServer
	// handler is the tenant's QueryServer behind its /v1/{tenant} prefix
	// strip, built once so the ingest hot path (POST /reports) doesn't
	// allocate a fresh delegating handler per request.
	handler http.Handler

	// pushMu serializes pushes (scheduled, forced, and shutdown flushes)
	// end to end, including the retrying network round-trip. Ingestion
	// never takes it.
	pushMu sync.Mutex
	// mu guards the bookkeeping fields below and is only ever held for
	// short copies, so healthz never blocks behind an in-flight push while
	// the aggregator is slow or unreachable. Writers additionally hold
	// pushMu.
	mu sync.Mutex
	// lastPushed is the state snapshot the aggregator has acknowledged
	// through seq; the next delta is diffed against it.
	lastPushed privmdr.CollectorState
	// seq is the sequence number of the last acknowledged push (0 before
	// the first).
	seq     uint64
	lastErr string
	// inflight is a built-but-unacknowledged push, frozen together with the
	// state snapshot it was diffed from. It is retried byte-identically
	// until the aggregator acknowledges its sequence number: if the
	// aggregator applied it but the ACK was lost, the retry duplicate-ACKs
	// against the exact delta that was merged, and lastPushed advances to
	// the frozen snapshot — never to a newer state whose extra reports were
	// not in the envelope.
	inflight *inflightPush
}

// inflightPush is a frozen, unacknowledged push envelope plus the full
// cumulative state it captured (the delta's baseline-plus-delta), which
// becomes lastPushed when the aggregator acknowledges the sequence number.
type inflightPush struct {
	env      PushEnvelope
	snapshot privmdr.CollectorState
}

// ShardStatus is one tenant's GET /healthz reply on a shard.
type ShardStatus struct {
	Role      string `json:"role"`
	Shard     string `json:"shard"`
	Tenant    string `json:"tenant"`
	Mechanism string `json:"mechanism"`
	// Received is how many reports this shard accepted for the tenant.
	Received int `json:"received"`
	// PushedSeq is the last acknowledged push sequence number.
	PushedSeq uint64 `json:"pushed_seq"`
	// PushedReports is how many of the received reports the aggregator has
	// acknowledged; Pending is the un-shipped remainder.
	PushedReports int `json:"pushed_reports"`
	Pending       int `json:"pending"`
	// LastPushError is the most recent push failure. It is empty once the
	// shard is caught up: a later successful push clears it, and so does a
	// push that finds nothing pending and nothing frozen in flight — a
	// persistent value therefore always means un-shipped data is stuck
	// behind a failing aggregator leg, never a stale echo of a drained
	// transient.
	LastPushError string `json:"last_push_error,omitempty"`
}

// PushResult reports one tenant's push outcome.
type PushResult struct {
	Tenant string `json:"tenant"`
	// Seq is the last acknowledged sequence number after the call.
	Seq uint64 `json:"seq"`
	// Reports is how many reports the shipped delta carried (0 when
	// skipped).
	Reports int `json:"reports"`
	// Skipped reports that nothing (new) needed shipping.
	Skipped bool `json:"skipped"`
}

// NewShard builds the shard role over a topology. Call Close when the shard
// is discarded; pair it with Flush first to ship the final deltas.
func NewShard(topo *Topology, opts ShardOptions) (*Shard, error) {
	if opts.ID == "" || len(opts.ID) > maxShardID {
		return nil, fmt.Errorf("dist: shard ID length %d outside [1,%d]", len(opts.ID), maxShardID)
	}
	agg := opts.Aggregator
	if agg == "" {
		agg = topo.Aggregator
	}
	if agg == "" {
		return nil, fmt.Errorf("dist: shard %s needs an aggregator URL (topology or ShardOptions)", opts.ID)
	}
	protos, err := topo.protocols()
	if err != nil {
		return nil, err
	}
	s := &Shard{
		id:       opts.ID,
		nonce:    newInstanceNonce(),
		agg:      agg,
		tenants:  make(map[string]*shardTenant, len(topo.Tenants)),
		tr:       newTransport(opts.Timeout),
		interval: opts.PushInterval,
		minPush:  opts.MinPush,
		stop:     make(chan struct{}),
	}
	for _, tc := range topo.Tenants {
		// Live mode with no refresher: reports are accepted forever and the
		// shard never finalizes — it only exports states.
		qs, err := privmdr.NewLiveQueryServer(protos[tc.Name], privmdr.LiveOptions{})
		if err != nil {
			s.closeTenants()
			return nil, fmt.Errorf("dist: tenant %q: %w", tc.Name, err)
		}
		s.tenants[tc.Name] = &shardTenant{
			name:    tc.Name,
			qs:      qs,
			handler: http.StripPrefix("/v1/"+tc.Name, qs),
		}
		s.names = append(s.names, tc.Name)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/{tenant}/reports", s.delegate)
	mux.HandleFunc("GET /v1/{tenant}/params", s.delegate)
	mux.HandleFunc("GET /v1/{tenant}/state", s.delegate)
	mux.HandleFunc("GET /v1/{tenant}/healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/{tenant}/push", s.handlePush)
	s.mux = mux
	if opts.PushInterval > 0 {
		s.done = make(chan struct{})
		go s.pushLoop()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Shard) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Tenant exposes a tenant's underlying QueryServer, e.g. to preload reports
// in-process before the listener starts.
func (s *Shard) Tenant(name string) (*privmdr.QueryServer, bool) {
	t, ok := s.tenants[name]
	if !ok {
		return nil, false
	}
	return t.qs, true
}

func (s *Shard) closeTenants() {
	for _, t := range s.tenants {
		_ = t.qs.Close()
	}
}

// Close stops the background pusher. Un-shipped deltas are not flushed —
// call Flush first for a clean drain.
func (s *Shard) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.done != nil {
		<-s.done
	}
	s.closeTenants()
	return nil
}

// pushLoop is the background pusher: every interval it ships each tenant's
// delta iff at least MinPush reports arrived since the last acknowledged
// push. Failures are retained per tenant (ShardStatus.LastPushError); an
// unacknowledged envelope stays frozen and is retried verbatim while later
// reports accumulate behind it — nothing is lost, only delayed.
func (s *Shard) pushLoop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			for _, name := range s.names {
				_, _ = s.push(context.Background(), s.tenants[name], s.minPush)
			}
		}
	}
}

// Flush forces a push for every tenant — the drain used at shutdown and by
// tests to reach a known synchronization point. The first error is
// returned, but every tenant is attempted.
func (s *Shard) Flush(ctx context.Context) error {
	var first error
	for _, name := range s.names {
		if _, err := s.push(ctx, s.tenants[name], 0); err != nil && first == nil {
			first = fmt.Errorf("dist: tenant %q: %w", name, err)
		}
	}
	return first
}

// FlushTenant forces one tenant's push now.
func (s *Shard) FlushTenant(ctx context.Context, tenant string) (PushResult, error) {
	t, ok := s.tenants[tenant]
	if !ok {
		return PushResult{}, fmt.Errorf("dist: unknown tenant %q", tenant)
	}
	return s.push(ctx, t, 0)
}

// newInstanceNonce draws a shard incarnation's random non-zero instance
// nonce.
func newInstanceNonce() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("dist: reading random instance nonce: %v", err))
		}
		if n := binary.LittleEndian.Uint64(b[:]); n != 0 {
			return n
		}
	}
}

// pushAck is the aggregator's push reply: on 2xx whether this envelope was
// applied (false for an idempotent duplicate), on 409 the last acknowledged
// sequence number the shard can resync from plus a machine-readable code
// ("stale", "gap", or "conflict").
type pushAck struct {
	Applied bool   `json:"applied"`
	Last    uint64 `json:"last"`
	Code    string `json:"code,omitempty"`
	Error   string `json:"error,omitempty"`
}

// upstreamError marks a push failure caused by the aggregator leg — the
// transport gave up, or the aggregator answered something the push protocol
// has no meaning for. POST /push reports these as 502 Bad Gateway; protocol
// conflicts (stale/gapped sequences, shard-instance conflicts) and
// malformed local state are NOT upstream errors and keep their own
// statuses.
type upstreamError struct{ err error }

func (e *upstreamError) Error() string { return e.err.Error() }
func (e *upstreamError) Unwrap() error { return e.err }

// push ships one tenant's delta since the last acknowledged push. min > 0
// makes it a thresholded scheduled push; 0 forces (but an empty delta is
// always skipped).
//
// If a previous push went unacknowledged (the transport gave up — the
// aggregator may or may not have applied it), its frozen envelope is resent
// byte-identically first, ignoring min: until its sequence number is
// acknowledged, no newer delta may ship, and committing it must move
// lastPushed exactly to its frozen snapshot. Reports that arrived in the
// meantime ride the following delta.
//
// On a 409 whose ACK shows the aggregator has nothing from this shard
// (last == 0, e.g. it restarted empty), the shard re-baselines: it resets
// its sequence and ships the full cumulative state as sequence 1, which is
// exact because an aggregator with no history from this shard holds none of
// its reports. A 409 with code "conflict" means the aggregator holds
// history for this shard ID from a different instance — it is surfaced as
// ErrShardConflict (duplicate shard ID or divergent restart) rather than
// retried quietly.
func (s *Shard) push(ctx context.Context, t *shardTenant, min int) (PushResult, error) {
	t.pushMu.Lock()
	defer t.pushMu.Unlock()

	t.mu.Lock()
	inflight := t.inflight
	seq := t.seq
	lastPushed := t.lastPushed
	t.mu.Unlock()

	if inflight == nil {
		cur, err := t.qs.State()
		if err != nil {
			return PushResult{}, s.recordErr(t, err)
		}
		delta, err := privmdr.DiffStates(cur, lastPushed)
		if err != nil {
			return PushResult{}, s.recordErr(t, err)
		}
		fresh := delta.Received()
		if fresh == 0 {
			// Caught up: nothing pending and no frozen in-flight envelope,
			// so a retained error from an earlier transient failure no
			// longer describes this tenant's push health — clear it instead
			// of alarming healthz forever (ShardStatus.LastPushError is
			// documented to be empty once the shard is caught up).
			t.mu.Lock()
			t.lastErr = ""
			t.mu.Unlock()
			return PushResult{Tenant: t.name, Seq: seq, Skipped: true}, nil
		}
		if fresh < min {
			return PushResult{Tenant: t.name, Seq: seq, Skipped: true}, nil
		}
		inflight = &inflightPush{
			env:      PushEnvelope{Shard: s.id, Nonce: s.nonce, Seq: seq + 1, Delta: delta},
			snapshot: cur,
		}
		t.mu.Lock()
		t.inflight = inflight
		t.mu.Unlock()
	}
	for rebaselined := false; ; {
		blob, err := inflight.env.MarshalBinary()
		if err != nil {
			return PushResult{}, s.recordErr(t, err)
		}
		status, body, err := s.tr.post(ctx, s.agg+"/v1/"+t.name+"/push", "application/octet-stream", blob)
		if err != nil {
			// The envelope stays frozen in flight: the next push retries
			// these exact bytes, so an applied-but-unacknowledged delta can
			// only ever be duplicate-ACKed, never recomputed.
			return PushResult{}, s.recordErr(t, &upstreamError{err})
		}
		if status >= 200 && status < 300 {
			t.mu.Lock()
			t.lastPushed = inflight.snapshot
			t.seq = inflight.env.Seq
			t.inflight = nil
			t.lastErr = ""
			t.mu.Unlock()
			return PushResult{Tenant: t.name, Seq: inflight.env.Seq, Reports: inflight.env.Delta.Received()}, nil
		}
		var ack pushAck
		if uerr := json.Unmarshal(body, &ack); uerr != nil {
			// An undecodable rejection body (truncated response, proxy error
			// page) must not be read as a zero-valued ack: a 409 with a
			// phantom last == 0 would trigger a spurious re-baseline that
			// double-counts every already-merged report. Treat it as a broken
			// upstream leg and keep the envelope frozen for retry.
			return PushResult{}, s.recordErr(t, &upstreamError{fmt.Errorf("dist: push rejected: %d with undecodable ack body %q: %w", status, body, uerr)})
		}
		if status == http.StatusConflict && ack.Code == "conflict" {
			return PushResult{}, s.recordErr(t, fmt.Errorf("dist: push seq %d: %w — aggregator said: %s",
				inflight.env.Seq, ErrShardConflict, ack.Error))
		}
		if status == http.StatusConflict && !rebaselined && ack.Last == 0 && inflight.env.Seq > 1 {
			// The aggregator restarted empty underneath us: ship the full
			// cumulative state (which supersedes the frozen delta) as a new
			// sequence 1.
			rebaselined = true
			cur, err := t.qs.State()
			if err != nil {
				return PushResult{}, s.recordErr(t, err)
			}
			inflight = &inflightPush{
				env:      PushEnvelope{Shard: s.id, Nonce: s.nonce, Seq: 1, Delta: cur},
				snapshot: cur,
			}
			t.mu.Lock()
			t.lastPushed = privmdr.CollectorState{}
			t.seq = 0
			t.inflight = inflight
			t.mu.Unlock()
			continue
		}
		if status == http.StatusConflict {
			// Surface the aggregator's sequencing verdict as the matching
			// sentinel, so callers (and POST /push via errStatus) see the
			// same 409-class error the aggregator raised instead of an
			// opaque gateway failure.
			var reason error
			switch ack.Code {
			case "stale":
				reason = ErrStaleSeq
			case "gap":
				reason = ErrSeqGap
			}
			if reason != nil {
				return PushResult{}, s.recordErr(t, fmt.Errorf("dist: push seq %d: %w — aggregator said: %s",
					inflight.env.Seq, reason, ack.Error))
			}
		}
		return PushResult{}, s.recordErr(t, &upstreamError{fmt.Errorf("dist: push rejected: %d %s", status, body)})
	}
}

// recordErr retains a push failure for healthz and returns it.
func (s *Shard) recordErr(t *shardTenant, err error) error {
	t.mu.Lock()
	t.lastErr = err.Error()
	t.mu.Unlock()
	return err
}

// delegate routes a tenant endpoint to the tenant's QueryServer with the
// /v1/{tenant} prefix stripped, so the inner handlers (pooled report
// decode, state export) serve unchanged.
func (s *Shard) delegate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	t, ok := s.tenants[name]
	if !ok {
		unknownTenant(w, name)
		return
	}
	t.handler.ServeHTTP(w, r)
}

func (s *Shard) handleHealthz(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	t, ok := s.tenants[name]
	if !ok {
		unknownTenant(w, name)
		return
	}
	writeJSON(w, http.StatusOK, s.status(t))
}

func (s *Shard) status(t *shardTenant) ShardStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	received := t.qs.Received()
	pushed := t.lastPushed.Received()
	return ShardStatus{
		Role:          "shard",
		Shard:         s.id,
		Tenant:        t.name,
		Mechanism:     t.qs.Status().Mechanism,
		Received:      received,
		PushedSeq:     t.seq,
		PushedReports: pushed,
		Pending:       max(received-pushed, 0),
		LastPushError: t.lastErr,
	}
}

func (s *Shard) handlePush(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	t, ok := s.tenants[name]
	if !ok {
		unknownTenant(w, name)
		return
	}
	res, err := s.push(r.Context(), t, 0)
	if err != nil {
		writeError(w, pushErrStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// pushErrStatus maps a forced push's failure to the status POST /push
// reports, extending errStatus with the gateway case: an unreachable (or
// nonsensical) aggregator is 502 Bad Gateway, while protocol conflicts
// (ErrShardConflict, ErrStaleSeq, ErrSeqGap — 409) and malformed local
// state (400) keep the statuses PROTOCOL.md documents for them.
func pushErrStatus(err error) int {
	var up *upstreamError
	if errors.As(err, &up) {
		return http.StatusBadGateway
	}
	return errStatus(err)
}
