package dist

import (
	"bytes"
	"testing"
)

// FuzzPushEnvelope is the push channel's untrusted-input contract, matching
// the report and state codec fuzzers: the aggregator decodes envelope bytes
// straight off the network, so arbitrary input must never panic or drive an
// unbounded allocation, and any payload that decodes must validate and
// round-trip canonically — re-encoding a decoded envelope reproduces the
// accepted bytes exactly.
func FuzzPushEnvelope(f *testing.F) {
	delta := sampleDelta(f)
	for _, env := range []PushEnvelope{
		{Shard: "s", Nonce: 1, Seq: 1, Delta: delta},
		{Shard: "edge-07.rack-2", Nonce: 1<<64 - 1, Seq: 1 << 40, Delta: delta},
	} {
		seed, err := env.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte("PMDP"))
	f.Add([]byte{'P', 'M', 'D', 'P', pushVersion, 1, 's', 1, 1})
	f.Add([]byte{'P', 'M', 'D', 'P', pushVersion, 1, 's', 0, 1}) // zero nonce
	f.Add([]byte{'P', 'M', 'D', 'P', pushVersion, 0x81, 0x00})   // overlong varint
	f.Fuzz(func(t *testing.T, data []byte) {
		var env PushEnvelope
		if err := env.UnmarshalBinary(data); err != nil {
			return
		}
		if err := env.Validate(); err != nil {
			t.Fatalf("decoded envelope fails validation: %v", err)
		}
		out, err := env.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded envelope does not re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}
