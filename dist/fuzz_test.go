package dist

import (
	"bytes"
	"testing"

	"privmdr"
)

// streamDelta builds a small real v2 delta under the named mechanism, the
// way an edge shard would: a few reports through a live collector.
func streamDelta(t testing.TB, name string) privmdr.CollectorState {
	t.Helper()
	p := privmdr.Params{N: 12, D: 2, C: 16, Eps: 1.0, Seed: 212}
	proto, err := privmdr.ProtocolByName(name, p)
	if err != nil {
		t.Fatal(err)
	}
	coll, err := proto.NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 3; u++ {
		a, err := proto.Assignment(u)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := proto.ClientReport(a, []int{u, 15 - u}, privmdr.ClientRand(p, u))
		if err != nil {
			t.Fatal(err)
		}
		if err := coll.Submit(rep); err != nil {
			t.Fatal(err)
		}
	}
	st, err := coll.(privmdr.StatefulCollector).State()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// FuzzPushEnvelope is the push channel's untrusted-input contract, matching
// the report and state codec fuzzers: the aggregator decodes envelope bytes
// straight off the network, so arbitrary input must never panic or drive an
// unbounded allocation, and any payload that decodes must validate and
// round-trip canonically — re-encoding a decoded envelope reproduces the
// accepted bytes exactly.
func FuzzPushEnvelope(f *testing.F) {
	delta := sampleDelta(f)
	envs := []PushEnvelope{
		{Shard: "s", Nonce: 1, Seq: 1, Delta: delta},
		{Shard: "edge-07.rack-2", Nonce: 1<<64 - 1, Seq: 1 << 40, Delta: delta},
	}
	// HIO and LHIO now push the same v2 count-vector deltas as every other
	// mechanism; seed real ones (LHIO's include tally-only root groups) plus
	// a hand-built v3 hybrid — the shape a capped HIO deployment pushes, with
	// retained-report and streamed groups side by side — so the fuzzer starts
	// inside all three state layouts the push channel accepts.
	for i, name := range []string{"HIO", "LHIO"} {
		envs = append(envs, PushEnvelope{Shard: "edge-" + name, Nonce: uint64(i) + 2, Seq: 7, Delta: streamDelta(f, name)})
	}
	envs = append(envs, PushEnvelope{Shard: "edge-capped", Nonce: 9, Seq: 9, Delta: privmdr.CollectorState{
		Version: 3, Mech: "HIO", Params: privmdr.Params{N: 12, D: 2, C: 16, Eps: 1, Seed: 213},
		Counts: []privmdr.GroupCounts{
			{N: 3, Counts: []int64{2, 1}},
			{N: 2, Reports: []privmdr.Report{{Group: 1, Seed: 77, Value: 1}, {Group: 1, Seed: 78, Value: 0}}},
			{N: 0},
			{N: 4, Counts: []int64{-1, 0, 5, 0}},
		},
	}})
	for _, env := range envs {
		seed, err := env.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte("PMDP"))
	f.Add([]byte{'P', 'M', 'D', 'P', pushVersion, 1, 's', 1, 1})
	f.Add([]byte{'P', 'M', 'D', 'P', pushVersion, 1, 's', 0, 1}) // zero nonce
	f.Add([]byte{'P', 'M', 'D', 'P', pushVersion, 0x81, 0x00})   // overlong varint
	f.Fuzz(func(t *testing.T, data []byte) {
		var env PushEnvelope
		if err := env.UnmarshalBinary(data); err != nil {
			return
		}
		if err := env.Validate(); err != nil {
			t.Fatalf("decoded envelope fails validation: %v", err)
		}
		out, err := env.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded envelope does not re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}

// FuzzJournalRecord is the durability journal's on-disk contract: recovery
// reads the WAL byte stream back after a crash, so arbitrary (possibly torn
// or bit-rotted) bytes must never panic or over-allocate, and any record
// that decodes must re-frame canonically — appendJournalRecord on the
// decoded payload reproduces exactly the bytes the decoder consumed.
func FuzzJournalRecord(f *testing.F) {
	f.Add(appendJournalRecord(nil, []byte("payload")))
	f.Add(appendJournalRecord(nil, nil))
	f.Add(appendJournalRecord(appendJournalRecord(nil, []byte("a")), []byte("b")))
	good := appendJournalRecord(nil, []byte("torn"))
	f.Add(good[:len(good)-3]) // torn tail
	f.Add([]byte("PMJR"))
	f.Add([]byte{'P', 'M', 'J', 'R', journalRecordVersion, 0x81, 0x00}) // overlong varint
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, n, err := decodeJournalRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoded record claims %d of %d bytes", n, len(data))
		}
		if re := appendJournalRecord(nil, payload); !bytes.Equal(re, data[:n]) {
			t.Fatalf("round trip changed bytes: %x -> %x", data[:n], re)
		}
	})
}
