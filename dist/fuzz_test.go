package dist

import (
	"bytes"
	"testing"
)

// FuzzPushEnvelope is the push channel's untrusted-input contract, matching
// the report and state codec fuzzers: the aggregator decodes envelope bytes
// straight off the network, so arbitrary input must never panic or drive an
// unbounded allocation, and any payload that decodes must validate and
// round-trip canonically — re-encoding a decoded envelope reproduces the
// accepted bytes exactly.
func FuzzPushEnvelope(f *testing.F) {
	delta := sampleDelta(f)
	for _, env := range []PushEnvelope{
		{Shard: "s", Nonce: 1, Seq: 1, Delta: delta},
		{Shard: "edge-07.rack-2", Nonce: 1<<64 - 1, Seq: 1 << 40, Delta: delta},
	} {
		seed, err := env.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte("PMDP"))
	f.Add([]byte{'P', 'M', 'D', 'P', pushVersion, 1, 's', 1, 1})
	f.Add([]byte{'P', 'M', 'D', 'P', pushVersion, 1, 's', 0, 1}) // zero nonce
	f.Add([]byte{'P', 'M', 'D', 'P', pushVersion, 0x81, 0x00})   // overlong varint
	f.Fuzz(func(t *testing.T, data []byte) {
		var env PushEnvelope
		if err := env.UnmarshalBinary(data); err != nil {
			return
		}
		if err := env.Validate(); err != nil {
			t.Fatalf("decoded envelope fails validation: %v", err)
		}
		out, err := env.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded envelope does not re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}

// FuzzJournalRecord is the durability journal's on-disk contract: recovery
// reads the WAL byte stream back after a crash, so arbitrary (possibly torn
// or bit-rotted) bytes must never panic or over-allocate, and any record
// that decodes must re-frame canonically — appendJournalRecord on the
// decoded payload reproduces exactly the bytes the decoder consumed.
func FuzzJournalRecord(f *testing.F) {
	f.Add(appendJournalRecord(nil, []byte("payload")))
	f.Add(appendJournalRecord(nil, nil))
	f.Add(appendJournalRecord(appendJournalRecord(nil, []byte("a")), []byte("b")))
	good := appendJournalRecord(nil, []byte("torn"))
	f.Add(good[:len(good)-3]) // torn tail
	f.Add([]byte("PMJR"))
	f.Add([]byte{'P', 'M', 'J', 'R', journalRecordVersion, 0x81, 0x00}) // overlong varint
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, n, err := decodeJournalRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoded record claims %d of %d bytes", n, len(data))
		}
		if re := appendJournalRecord(nil, payload); !bytes.Equal(re, data[:n]) {
			t.Fatalf("round trip changed bytes: %x -> %x", data[:n], re)
		}
	})
}
