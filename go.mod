module privmdr

go 1.24
