package privmdr_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"privmdr"
)

func genSmall(t *testing.T) *privmdr.Dataset {
	t.Helper()
	ds, err := privmdr.GenerateDataset("normal", privmdr.GenOptions{N: 15_000, D: 4, C: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestMechanismsList(t *testing.T) {
	ms := privmdr.Mechanisms()
	want := []string{"Uni", "MSW", "CALM", "HIO", "LHIO", "TDG", "HDG"}
	if len(ms) != len(want) {
		t.Fatalf("got %d mechanisms", len(ms))
	}
	for i, m := range ms {
		if m.Name() != want[i] {
			t.Errorf("mechanism %d = %s, want %s", i, m.Name(), want[i])
		}
	}
}

func TestMechanismByName(t *testing.T) {
	for _, name := range []string{"uni", "MSW", "calm", "HIO", "lhio", "TDG", "hdg", "ITDG", "ihdg"} {
		m, err := privmdr.MechanismByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !strings.EqualFold(m.Name(), name) {
			t.Errorf("MechanismByName(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := privmdr.MechanismByName("bogus"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestFitDeterministicAcrossCalls(t *testing.T) {
	ds := genSmall(t)
	q := privmdr.Query{{Attr: 0, Lo: 4, Hi: 19}, {Attr: 2, Lo: 0, Hi: 15}}
	var answers []float64
	for i := 0; i < 2; i++ {
		est, err := privmdr.Fit(privmdr.NewHDG(), ds, 1.0, 42)
		if err != nil {
			t.Fatal(err)
		}
		a, err := est.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		answers = append(answers, a)
	}
	if answers[0] != answers[1] {
		t.Errorf("same seed produced %g then %g", answers[0], answers[1])
	}
	est, err := privmdr.Fit(privmdr.NewHDG(), ds, 1.0, 43)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := est.Answer(q)
	if a == answers[0] {
		t.Log("different seeds matched exactly — astronomically unlikely but not impossible")
	}
}

func TestEndToEndWorkflow(t *testing.T) {
	ds := genSmall(t)
	qs, err := privmdr.RandomWorkload(40, 2, ds.D(), ds.C, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	truth := privmdr.TrueAnswers(ds, qs)
	est, err := privmdr.Fit(privmdr.NewHDG(), ds, 2.0, 9)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := privmdr.Answers(est, qs)
	if err != nil {
		t.Fatal(err)
	}
	mae := privmdr.MAE(answers, truth)
	uniMAE := 0.0
	for i, q := range qs {
		uniMAE += math.Abs(q.Volume(ds.C) - truth[i])
	}
	uniMAE /= float64(len(qs))
	if mae >= uniMAE {
		t.Errorf("HDG MAE %g not better than uniform guess %g", mae, uniMAE)
	}
}

func TestAnswersErrorPropagation(t *testing.T) {
	ds := genSmall(t)
	est, err := privmdr.Fit(privmdr.NewUni(), ds, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := privmdr.Answers(est, []privmdr.Query{{{Attr: 99, Lo: 0, Hi: 1}}}); err == nil {
		t.Error("invalid query should propagate an error")
	}
}

func TestGuidelineGranularitiesPublic(t *testing.T) {
	g1, g2, err := privmdr.GuidelineGranularities(1.0, 1_000_000, 6, 64)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != 16 || g2 != 4 {
		t.Errorf("guideline = (%d,%d), Table 2 says (16,4)", g1, g2)
	}
}

func TestGenerateDatasetNames(t *testing.T) {
	for _, name := range []string{"ipums", "bfive", "normal", "laplace", "loan", "acs", "uniform"} {
		ds, err := privmdr.GenerateDataset(name, privmdr.GenOptions{N: 100, D: 3, C: 16, Seed: 2})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if ds.N() != 100 {
			t.Errorf("%s: n = %d", name, ds.N())
		}
	}
	if _, err := privmdr.GenerateDataset("unknown", privmdr.GenOptions{N: 10, D: 2, C: 8}); err == nil {
		t.Error("unknown generator should fail")
	}
}

func TestLoadCSVPublic(t *testing.T) {
	ds := genSmall(t)
	var buf bytes.Buffer
	if err := ds.SaveCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := privmdr.LoadCSV(&buf, ds.C)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.D() != ds.D() {
		t.Errorf("round trip shape (%d,%d)", back.N(), back.D())
	}
}

func TestOptionsAblation(t *testing.T) {
	ds := genSmall(t)
	m := privmdr.NewHDGWithOptions(privmdr.Options{SkipPostProcess: true})
	if m.Name() != "IHDG" {
		t.Errorf("ablation name = %s", m.Name())
	}
	if _, err := privmdr.Fit(m, ds, 1.0, 3); err != nil {
		t.Fatal(err)
	}
	tm := privmdr.NewTDGWithOptions(privmdr.Options{G2: 4})
	est, err := privmdr.Fit(tm, ds, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Answer(privmdr.Query{{Attr: 0, Lo: 0, Hi: 15}}); err != nil {
		t.Fatal(err)
	}
}

func TestAllMechanismsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ds, err := privmdr.GenerateDataset("ipums", privmdr.GenOptions{N: 12_000, D: 3, C: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := privmdr.RandomWorkload(20, 2, 3, 16, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	truth := privmdr.TrueAnswers(ds, qs)
	for _, m := range privmdr.Mechanisms() {
		est, err := privmdr.Fit(m, ds, 1.0, 6)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		answers, err := privmdr.Answers(est, qs)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		mae := privmdr.MAE(answers, truth)
		if math.IsNaN(mae) || math.IsInf(mae, 0) {
			t.Errorf("%s produced non-finite MAE", m.Name())
		}
	}
}

func TestSaveLoadEstimatorPublic(t *testing.T) {
	ds := genSmall(t)
	est, err := privmdr.Fit(privmdr.NewHDG(), ds, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := privmdr.SaveEstimator(&buf, est); err != nil {
		t.Fatal(err)
	}
	back, err := privmdr.LoadEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := privmdr.Query{{Attr: 0, Lo: 4, Hi: 19}, {Attr: 2, Lo: 0, Hi: 15}}
	a1, _ := est.Answer(q)
	a2, _ := back.Answer(q)
	if a1 != a2 {
		t.Errorf("round-trip answers diverge: %g vs %g", a1, a2)
	}
}

func TestCollectorPublicFlow(t *testing.T) {
	ds := genSmall(t)
	p := privmdr.Params{N: ds.N(), D: ds.D(), C: ds.C, Eps: 2.0, Seed: 8}
	coll, err := privmdr.NewCollector(p)
	if err != nil {
		t.Fatal(err)
	}
	record := make([]int, ds.D())
	for u := 0; u < ds.N(); u++ {
		a, err := coll.Assignment(u)
		if err != nil {
			t.Fatal(err)
		}
		for i := range record {
			record[i] = ds.Value(i, u)
		}
		rep, err := privmdr.ClientReport(p, a, record, privmdr.NewClientRand(uint64(u)))
		if err != nil {
			t.Fatal(err)
		}
		if err := coll.Submit(a, rep); err != nil {
			t.Fatal(err)
		}
	}
	est, err := coll.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	q := privmdr.Query{{Attr: 0, Lo: 0, Hi: 15}}
	if _, err := est.Answer(q); err != nil {
		t.Fatal(err)
	}
	// The finalized estimator is also serializable.
	var buf bytes.Buffer
	if err := privmdr.SaveEstimator(&buf, est); err != nil {
		t.Fatal(err)
	}
}
