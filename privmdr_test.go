package privmdr_test

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"privmdr"
)

func genSmall(t *testing.T) *privmdr.Dataset {
	t.Helper()
	ds, err := privmdr.GenerateDataset("normal", privmdr.GenOptions{N: 15_000, D: 4, C: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestMechanismsList(t *testing.T) {
	ms := privmdr.Mechanisms()
	want := []string{"Uni", "MSW", "CALM", "HIO", "LHIO", "TDG", "HDG"}
	if len(ms) != len(want) {
		t.Fatalf("got %d mechanisms", len(ms))
	}
	for i, m := range ms {
		if m.Name() != want[i] {
			t.Errorf("mechanism %d = %s, want %s", i, m.Name(), want[i])
		}
	}
}

func TestMechanismByName(t *testing.T) {
	for _, name := range []string{"uni", "MSW", "calm", "HIO", "lhio", "TDG", "hdg", "ITDG", "ihdg"} {
		m, err := privmdr.MechanismByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !strings.EqualFold(m.Name(), name) {
			t.Errorf("MechanismByName(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := privmdr.MechanismByName("bogus"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestFitDeterministicAcrossCalls(t *testing.T) {
	ds := genSmall(t)
	q := privmdr.Query{{Attr: 0, Lo: 4, Hi: 19}, {Attr: 2, Lo: 0, Hi: 15}}
	var answers []float64
	for i := 0; i < 2; i++ {
		est, err := privmdr.Fit(privmdr.NewHDG(), ds, 1.0, 42)
		if err != nil {
			t.Fatal(err)
		}
		a, err := est.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		answers = append(answers, a)
	}
	if answers[0] != answers[1] {
		t.Errorf("same seed produced %g then %g", answers[0], answers[1])
	}
	est, err := privmdr.Fit(privmdr.NewHDG(), ds, 1.0, 43)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := est.Answer(q)
	if a == answers[0] {
		t.Log("different seeds matched exactly — astronomically unlikely but not impossible")
	}
}

func TestEndToEndWorkflow(t *testing.T) {
	ds := genSmall(t)
	qs, err := privmdr.RandomWorkload(40, 2, ds.D(), ds.C, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	truth := privmdr.TrueAnswers(ds, qs)
	est, err := privmdr.Fit(privmdr.NewHDG(), ds, 2.0, 9)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := privmdr.Answers(est, qs)
	if err != nil {
		t.Fatal(err)
	}
	mae := privmdr.MAE(answers, truth)
	uniMAE := 0.0
	for i, q := range qs {
		uniMAE += math.Abs(q.Volume(ds.C) - truth[i])
	}
	uniMAE /= float64(len(qs))
	if mae >= uniMAE {
		t.Errorf("HDG MAE %g not better than uniform guess %g", mae, uniMAE)
	}
}

func TestAnswersErrorPropagation(t *testing.T) {
	ds := genSmall(t)
	est, err := privmdr.Fit(privmdr.NewUni(), ds, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := privmdr.Answers(est, []privmdr.Query{{{Attr: 99, Lo: 0, Hi: 1}}}); err == nil {
		t.Error("invalid query should propagate an error")
	}
}

func TestGuidelineGranularitiesPublic(t *testing.T) {
	g1, g2, err := privmdr.GuidelineGranularities(1.0, 1_000_000, 6, 64)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != 16 || g2 != 4 {
		t.Errorf("guideline = (%d,%d), Table 2 says (16,4)", g1, g2)
	}
}

func TestGenerateDatasetNames(t *testing.T) {
	for _, name := range []string{"ipums", "bfive", "normal", "laplace", "loan", "acs", "uniform"} {
		ds, err := privmdr.GenerateDataset(name, privmdr.GenOptions{N: 100, D: 3, C: 16, Seed: 2})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if ds.N() != 100 {
			t.Errorf("%s: n = %d", name, ds.N())
		}
	}
	if _, err := privmdr.GenerateDataset("unknown", privmdr.GenOptions{N: 10, D: 2, C: 8}); err == nil {
		t.Error("unknown generator should fail")
	}
}

func TestLoadCSVPublic(t *testing.T) {
	ds := genSmall(t)
	var buf bytes.Buffer
	if err := ds.SaveCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := privmdr.LoadCSV(&buf, ds.C)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.D() != ds.D() {
		t.Errorf("round trip shape (%d,%d)", back.N(), back.D())
	}
}

func TestOptionsAblation(t *testing.T) {
	ds := genSmall(t)
	m := privmdr.NewHDGWithOptions(privmdr.Options{SkipPostProcess: true})
	if m.Name() != "IHDG" {
		t.Errorf("ablation name = %s", m.Name())
	}
	if _, err := privmdr.Fit(m, ds, 1.0, 3); err != nil {
		t.Fatal(err)
	}
	tm := privmdr.NewTDGWithOptions(privmdr.Options{G2: 4})
	est, err := privmdr.Fit(tm, ds, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Answer(privmdr.Query{{Attr: 0, Lo: 0, Hi: 15}}); err != nil {
		t.Fatal(err)
	}
}

func TestAllMechanismsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ds, err := privmdr.GenerateDataset("ipums", privmdr.GenOptions{N: 12_000, D: 3, C: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := privmdr.RandomWorkload(20, 2, 3, 16, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	truth := privmdr.TrueAnswers(ds, qs)
	for _, m := range privmdr.Mechanisms() {
		est, err := privmdr.Fit(m, ds, 1.0, 6)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		answers, err := privmdr.Answers(est, qs)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		mae := privmdr.MAE(answers, truth)
		if math.IsNaN(mae) || math.IsInf(mae, 0) {
			t.Errorf("%s produced non-finite MAE", m.Name())
		}
	}
}

func TestSaveLoadEstimatorPublic(t *testing.T) {
	ds := genSmall(t)
	est, err := privmdr.Fit(privmdr.NewHDG(), ds, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := privmdr.SaveEstimator(&buf, est); err != nil {
		t.Fatal(err)
	}
	back, err := privmdr.LoadEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := privmdr.Query{{Attr: 0, Lo: 4, Hi: 19}, {Attr: 2, Lo: 0, Hi: 15}}
	a1, _ := est.Answer(q)
	a2, _ := back.Answer(q)
	if a1 != a2 {
		t.Errorf("round-trip answers diverge: %g vs %g", a1, a2)
	}
}

func TestCollectorPublicFlow(t *testing.T) {
	ds := genSmall(t)
	p := privmdr.Params{N: ds.N(), D: ds.D(), C: ds.C, Eps: 2.0, Seed: 8}
	proto, err := privmdr.NewHDG().Protocol(p)
	if err != nil {
		t.Fatal(err)
	}
	coll, err := proto.NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	record := make([]int, ds.D())
	for u := 0; u < ds.N(); u++ {
		a, err := proto.Assignment(u)
		if err != nil {
			t.Fatal(err)
		}
		for i := range record {
			record[i] = ds.Value(i, u)
		}
		rep, err := proto.ClientReport(a, record, privmdr.NewClientRand(uint64(u)))
		if err != nil {
			t.Fatal(err)
		}
		if err := coll.Submit(rep); err != nil {
			t.Fatal(err)
		}
	}
	est, err := coll.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	q := privmdr.Query{{Attr: 0, Lo: 0, Hi: 15}}
	if _, err := est.Answer(q); err != nil {
		t.Fatal(err)
	}
	// The finalized estimator is also serializable.
	var buf bytes.Buffer
	if err := privmdr.SaveEstimator(&buf, est); err != nil {
		t.Fatal(err)
	}
}

// protocolDataset is small enough for every mechanism (HIO needs levels^d
// groups) yet large enough for meaningful estimates.
func protocolDataset(t *testing.T) *privmdr.Dataset {
	t.Helper()
	ds, err := privmdr.GenerateDataset("ipums", privmdr.GenOptions{N: 12_000, D: 3, C: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// runProtocolPath plays the explicit deployment flow — Protocol →
// Assignment → ClientReport → Submit → Finalize — exactly as a fleet of
// remote clients would, using the canonical per-user client randomness.
func runProtocolPath(t *testing.T, m privmdr.Mechanism, ds *privmdr.Dataset, eps float64, seed uint64) privmdr.Estimator {
	t.Helper()
	p := privmdr.Params{N: ds.N(), D: ds.D(), C: ds.C, Eps: eps, Seed: seed}
	proto, err := m.Protocol(p)
	if err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	coll, err := proto.NewCollector()
	if err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	record := make([]int, ds.D())
	for u := 0; u < ds.N(); u++ {
		a, err := proto.Assignment(u)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for i := range record {
			record[i] = ds.Value(i, u)
		}
		rep, err := proto.ClientReport(a, record, privmdr.ClientRand(p, u))
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if err := coll.Submit(rep); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
	}
	est, err := coll.Finalize()
	if err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	return est
}

// TestProtocolPathMatchesFit is the core contract of the API redesign:
// for every mechanism, the explicit client/server protocol path and the
// batch Fit convenience wrapper produce bit-identical estimators under the
// same public parameters.
func TestProtocolPathMatchesFit(t *testing.T) {
	ds := protocolDataset(t)
	qs, err := privmdr.RandomWorkload(25, 2, ds.D(), ds.C, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	qs = append(qs, privmdr.Query{{Attr: 1, Lo: 3, Hi: 12}}) // 1-D coverage
	const eps, seed = 1.0, 42
	for _, m := range privmdr.Mechanisms() {
		fitEst, err := privmdr.Fit(m, ds, eps, seed)
		if err != nil {
			t.Fatalf("%s: Fit: %v", m.Name(), err)
		}
		protoEst := runProtocolPath(t, m, ds, eps, seed)
		fitAns, err := privmdr.Answers(fitEst, qs)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		protoAns, err := privmdr.Answers(protoEst, qs)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for i := range qs {
			if fitAns[i] != protoAns[i] {
				t.Fatalf("%s: query %d: protocol path %v, Fit %v", m.Name(), i, protoAns[i], fitAns[i])
			}
		}
	}
}

// TestConcurrentSubmitMatchesFit fans every user's report into the
// collector from many goroutines in whatever order the scheduler picks and
// asserts the finalized estimator still matches the sequential Fit result
// bit for bit: aggregation depends only on the multiset of reports. Run
// with -race, this is also the ingestion-safety test.
func TestConcurrentSubmitMatchesFit(t *testing.T) {
	ds := protocolDataset(t)
	qs, err := privmdr.RandomWorkload(15, 2, ds.D(), ds.C, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	const eps, seed = 1.0, 77
	for _, m := range []privmdr.Mechanism{privmdr.NewHDG(), privmdr.NewTDG(), privmdr.NewMSW()} {
		p := privmdr.Params{N: ds.N(), D: ds.D(), C: ds.C, Eps: eps, Seed: seed}
		proto, err := m.Protocol(p)
		if err != nil {
			t.Fatal(err)
		}
		// Client side: produce every report first (deterministic per user).
		reports := make([]privmdr.Report, ds.N())
		record := make([]int, ds.D())
		for u := 0; u < ds.N(); u++ {
			a, err := proto.Assignment(u)
			if err != nil {
				t.Fatal(err)
			}
			for i := range record {
				record[i] = ds.Value(i, u)
			}
			reports[u], err = proto.ClientReport(a, record, privmdr.ClientRand(p, u))
			if err != nil {
				t.Fatal(err)
			}
		}
		// Server side: 8 workers race interleaved batches and singles.
		coll, err := proto.NewCollector()
		if err != nil {
			t.Fatal(err)
		}
		const workers = 8
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var batch []privmdr.Report
				for u := w; u < len(reports); u += workers {
					if len(batch) == 64 {
						if err := coll.SubmitBatch(batch); err != nil {
							errs <- err
							return
						}
						batch = batch[:0]
					}
					batch = append(batch, reports[u])
				}
				if err := coll.SubmitBatch(batch); err != nil {
					errs <- err
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		if got := coll.Received(); got != ds.N() {
			t.Fatalf("%s: received %d reports, want %d", m.Name(), got, ds.N())
		}
		concEst, err := coll.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		fitEst, err := privmdr.Fit(m, ds, eps, seed)
		if err != nil {
			t.Fatal(err)
		}
		concAns, err := privmdr.Answers(concEst, qs)
		if err != nil {
			t.Fatal(err)
		}
		fitAns, err := privmdr.Answers(fitEst, qs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range qs {
			if concAns[i] != fitAns[i] {
				t.Fatalf("%s: query %d: concurrent %v, sequential Fit %v", m.Name(), i, concAns[i], fitAns[i])
			}
		}
	}
}

// TestReportWireRoundTrip sends every report through the binary wire
// format and asserts the decoded deployment finalizes to the identical
// estimator, and that malformed payloads are rejected.
func TestReportWireRoundTrip(t *testing.T) {
	ds := protocolDataset(t)
	const eps, seed = 1.0, 9
	m := privmdr.NewHDG()
	p := privmdr.Params{N: ds.N(), D: ds.D(), C: ds.C, Eps: eps, Seed: seed}
	proto, err := m.Protocol(p)
	if err != nil {
		t.Fatal(err)
	}
	coll, err := proto.NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	record := make([]int, ds.D())
	var batch []privmdr.Report
	for u := 0; u < ds.N(); u++ {
		a, _ := proto.Assignment(u)
		for i := range record {
			record[i] = ds.Value(i, u)
		}
		rep, err := proto.ClientReport(a, record, privmdr.ClientRand(p, u))
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, rep)
		if len(batch) == 500 || u == ds.N()-1 {
			// ── wire boundary: encode on the client, decode on the server ──
			frame, err := privmdr.EncodeReports(batch)
			if err != nil {
				t.Fatal(err)
			}
			back, err := privmdr.DecodeReports(frame)
			if err != nil {
				t.Fatal(err)
			}
			if len(back) != len(batch) {
				t.Fatalf("round trip lost reports: %d -> %d", len(batch), len(back))
			}
			for i := range back {
				if back[i] != batch[i] {
					t.Fatalf("report %d mutated in transit: %+v -> %+v", i, batch[i], back[i])
				}
			}
			if err := coll.SubmitBatch(back); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	wireEst, err := coll.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	fitEst, err := privmdr.Fit(m, ds, eps, seed)
	if err != nil {
		t.Fatal(err)
	}
	qs, _ := privmdr.RandomWorkload(10, 2, ds.D(), ds.C, 0.5, 11)
	wireAns, _ := privmdr.Answers(wireEst, qs)
	fitAns, _ := privmdr.Answers(fitEst, qs)
	for i := range qs {
		if wireAns[i] != fitAns[i] {
			t.Fatalf("query %d: wire path %v, Fit %v", i, wireAns[i], fitAns[i])
		}
	}

	// Malformed payloads must be rejected, not misparsed.
	good, err := privmdr.EncodeReports([]privmdr.Report{{Group: 1, Seed: 99, Value: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := privmdr.DecodeReports(good[:len(good)-1]); err == nil {
		t.Error("truncated frame should fail")
	}
	if _, err := privmdr.DecodeReports(append(good, 0xFF)); err == nil {
		t.Error("trailing bytes should fail")
	}
	if _, err := privmdr.DecodeReports([]byte{0xFF, 0xFF}); err == nil {
		t.Error("garbage frame should fail")
	}
	var r privmdr.Report
	if err := r.UnmarshalBinary([]byte{0x07, 1, 2, 3}); err == nil {
		t.Error("unknown version byte should fail")
	}
}

func TestProtocolByName(t *testing.T) {
	p := privmdr.Params{N: 10_000, D: 3, C: 16, Eps: 1, Seed: 2}
	proto, err := privmdr.ProtocolByName("hdg", p)
	if err != nil {
		t.Fatal(err)
	}
	if proto.Name() != "HDG" {
		t.Errorf("protocol name %q", proto.Name())
	}
	if _, err := privmdr.ProtocolByName("bogus", p); err == nil {
		t.Error("unknown mechanism should fail")
	}
	if _, err := privmdr.ProtocolByName("hdg", privmdr.Params{}); err == nil {
		t.Error("invalid params should fail")
	}
}
