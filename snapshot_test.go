package privmdr_test

import (
	"bytes"
	"testing"

	"privmdr"
)

// snapshotState builds a small real collector state to wrap in snapshots.
func snapshotState(t *testing.T) privmdr.CollectorState {
	t.Helper()
	p := privmdr.Params{N: 50, D: 3, C: 16, Eps: 1.0, Seed: 210}
	proto, err := privmdr.ProtocolByName("Uni", p)
	if err != nil {
		t.Fatal(err)
	}
	coll, err := proto.NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 5; u++ {
		a, err := proto.Assignment(u)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := proto.ClientReport(a, []int{u % 16, 0, 15}, privmdr.ClientRand(p, u))
		if err != nil {
			t.Fatal(err)
		}
		if err := coll.Submit(rep); err != nil {
			t.Fatal(err)
		}
	}
	st, err := coll.(privmdr.StatefulCollector).State()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSnapshotCodec pins EncodeSnapshot/DecodeSnapshot round trips: the
// epoch-stamped wrapper restores both the state and the epoch counter, and
// a bare state (GET /state, finalize-once snapshots) passes through with
// epoch 0.
func TestSnapshotCodec(t *testing.T) {
	st := snapshotState(t)
	blob, err := privmdr.EncodeSnapshot(st, 7)
	if err != nil {
		t.Fatal(err)
	}
	back, epoch, err := privmdr.DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 7 || back.Received() != st.Received() {
		t.Fatalf("DecodeSnapshot = (epoch %d, %d reports), want (7, %d)", epoch, back.Received(), st.Received())
	}
	inner, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(blob, inner) {
		t.Fatal("snapshot wrapper does not embed the bare state encoding")
	}
	bare, epoch, err := privmdr.DecodeSnapshot(inner)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 0 || bare.Received() != st.Received() {
		t.Fatalf("bare DecodeSnapshot = (epoch %d, %d reports), want (0, %d)", epoch, bare.Received(), st.Received())
	}
}

// TestDecodeSnapshotRejects walks decodeSnapshot's error paths: truncated
// and versioned-wrong wrappers, corrupt epoch varints, and wrappers whose
// embedded state is garbage. None may be silently accepted — a replica that
// installed a half-read snapshot would serve wrong answers forever.
func TestDecodeSnapshotRejects(t *testing.T) {
	st := snapshotState(t)
	blob, err := privmdr.EncodeSnapshot(st, 7)
	if err != nil {
		t.Fatal(err)
	}
	magic := blob[:4] // "PMSS"
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"magic only", magic},
		{"bad wrapper version", append(append([]byte{}, magic...), 99)},
		{"missing epoch varint", blob[:5]},
		{"overflowing epoch varint", append(append([]byte{}, blob[:5]...),
			0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01)},
		{"missing state", blob[:6]},
		{"garbage state", append(append([]byte{}, blob[:6]...), 1, 2, 3)},
		{"truncated state", blob[:len(blob)-1]},
		{"trailing garbage", append(append([]byte{}, blob...), 0)},
		{"bare garbage", []byte("not a state")},
	}
	for _, tc := range cases {
		if _, _, err := privmdr.DecodeSnapshot(tc.data); err == nil {
			t.Errorf("%s: decoded successfully", tc.name)
		}
	}
}
