// batch_test.go covers the concurrent answering layer: AnswerBatch must
// return exactly the answers sequential Answer calls produce, and every
// finalized estimator must survive concurrent Answer traffic under -race
// (the regression tests for the HDG response-matrix memoization and HIO
// memo races).
package privmdr_test

import (
	"sync"
	"testing"

	"privmdr"
)

// batchWorkload mixes 1-D, 2-D, and 3-D queries — enough to exercise the
// 1-D grids, the pairwise decomposition, and Algorithm 2 (with its lazy
// response-matrix builds) in every mechanism.
func batchWorkload(t *testing.T, d, c int) []privmdr.Query {
	t.Helper()
	var qs []privmdr.Query
	for lambda := 1; lambda <= min(3, d); lambda++ {
		w, err := privmdr.RandomWorkload(20, lambda, d, c, 0.5, uint64(40+lambda))
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, w...)
	}
	return qs
}

// batchMechanisms is every mechanism the package ships, plus the
// trace-collecting variants whose bookkeeping rides the Answer path.
func batchMechanisms() map[string]privmdr.Mechanism {
	ms := map[string]privmdr.Mechanism{}
	for _, m := range privmdr.Mechanisms() {
		ms[m.Name()] = m
	}
	ms["HDG-traces"] = privmdr.NewHDGWithOptions(privmdr.Options{CollectTraces: true})
	ms["TDG-traces"] = privmdr.NewTDGWithOptions(privmdr.Options{CollectTraces: true})
	ms["HDG-eager"] = privmdr.NewHDGWithOptions(privmdr.Options{EagerMatrices: true})
	return ms
}

// TestAnswerBatchMatchesSequential fits every mechanism once and asserts
// the parallel batch path returns bit-identical answers to sequential
// Answer calls. Run under -race (as CI does) this is also the concurrency
// regression test: the batch workers race on the lazily built HDG response
// matrices, the HIO estimate memo, and the trace collection.
func TestAnswerBatchMatchesSequential(t *testing.T) {
	const (
		n, d, c = 6000, 3, 16
		eps     = 1.0
	)
	ds, err := privmdr.GenerateDataset("normal", privmdr.GenOptions{N: n, D: d, C: c, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	qs := batchWorkload(t, d, c)
	for name, m := range batchMechanisms() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			est, err := privmdr.Fit(m, ds, eps, 23)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]float64, len(qs))
			for i, q := range qs {
				if want[i], err = est.Answer(q); err != nil {
					t.Fatalf("sequential query %d: %v", i, err)
				}
			}
			// A fresh fit, so the batch workers — not the sequential loop
			// above — trigger the lazy response-matrix builds concurrently.
			fresh, err := privmdr.Fit(m, ds, eps, 23)
			if err != nil {
				t.Fatal(err)
			}
			got, err := privmdr.AnswerBatch(fresh, qs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range qs {
				if got[i] != want[i] {
					t.Fatalf("query %d (%v): batch %g, sequential %g", i, qs[i], got[i], want[i])
				}
			}
			if _, ok := est.(privmdr.BatchEstimator); !ok {
				t.Fatalf("%s estimator does not implement BatchEstimator", name)
			}
		})
	}
}

// TestConcurrentAnswerAllMechanisms hammers each finalized estimator with
// raw concurrent Answer calls (no batch pool in between) and checks every
// goroutine sees the sequential answers — the direct regression for the
// data race in hdgEstimator's response-matrix memoization.
func TestConcurrentAnswerAllMechanisms(t *testing.T) {
	const (
		n, d, c = 6000, 3, 16
		workers = 8
	)
	ds, err := privmdr.GenerateDataset("normal", privmdr.GenOptions{N: n, D: d, C: c, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	qs := batchWorkload(t, d, c)
	for name, m := range batchMechanisms() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			est, err := privmdr.Fit(m, ds, 1.0, 29)
			if err != nil {
				t.Fatal(err)
			}
			results := make([][]float64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					out := make([]float64, len(qs))
					// Stagger the start index so goroutines race on
					// different lazily built pairs.
					for k := range qs {
						i := (k + w*len(qs)/workers) % len(qs)
						a, err := est.Answer(qs[i])
						if err != nil {
							t.Errorf("worker %d query %d: %v", w, i, err)
							return
						}
						out[i] = a
					}
					results[w] = out
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			for w := 1; w < workers; w++ {
				for i := range qs {
					if results[w][i] != results[0][i] {
						t.Fatalf("worker %d query %d: %g, worker 0 saw %g", w, i, results[w][i], results[0][i])
					}
				}
			}
		})
	}
}

// TestAnswerBatchError checks the batch path reports the same error a
// sequential scan would: the lowest-indexed failing query's.
func TestAnswerBatchError(t *testing.T) {
	ds, err := privmdr.GenerateDataset("uniform", privmdr.GenOptions{N: 2000, D: 3, C: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	est, err := privmdr.Fit(privmdr.NewTDG(), ds, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	qs := batchWorkload(t, 3, 16)
	qs[3] = privmdr.Query{{Attr: 99, Lo: 0, Hi: 1}} // invalid
	qs[7] = privmdr.Query{{Attr: 0, Lo: 5, Hi: 2}}  // also invalid, later
	_, batchErr := privmdr.AnswerBatch(est, qs)
	if batchErr == nil {
		t.Fatal("batch with invalid query succeeded")
	}
	var seqErr error
	for _, q := range qs {
		if _, err := est.Answer(q); err != nil {
			seqErr = err
			break
		}
	}
	if seqErr == nil || batchErr.Error() != seqErr.Error() {
		t.Fatalf("batch error %q, sequential error %q", batchErr, seqErr)
	}
}
