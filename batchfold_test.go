// batchfold_test.go pins the batched-ingest contract at the mechanism
// level: for every mechanism, submitting the deployment's reports as
// shuffled, arbitrarily-cut batches from concurrent goroutines must
// finalize to answers bit-identical to one collector fed the same reports
// one at a time in user order. The folded statistics are integer count
// vectors, so every partition and arrival order folds to the same integers
// — the invariant the run-partitioned batch fold (PROTOCOL.md, "Batched
// ingestion") is required to preserve. Run with -race this also exercises
// concurrent SubmitBatch against the per-group stripe locks.
package privmdr_test

import (
	"math/rand/v2"
	"sync"
	"testing"

	"privmdr"
)

func TestBatchedSubmitMatchesPerReport(t *testing.T) {
	ds := protocolDataset(t)
	qs, err := privmdr.RandomWorkload(15, 2, ds.D(), ds.C, 0.5, 21)
	if err != nil {
		t.Fatal(err)
	}
	oneD, err := privmdr.RandomWorkload(5, 1, ds.D(), ds.C, 0.5, 22)
	if err != nil {
		t.Fatal(err)
	}
	qs = append(qs, oneD...)
	const eps, seed = 1.0, 77
	mechs := []privmdr.Mechanism{
		privmdr.NewUni(),
		privmdr.NewMSW(),
		privmdr.NewCALM(),
		privmdr.NewHIO(),
		privmdr.NewLHIO(),
		privmdr.NewTDG(),
		privmdr.NewHDG(),
	}
	for _, m := range mechs {
		t.Run(m.Name(), func(t *testing.T) {
			t.Parallel()
			p := privmdr.Params{N: ds.N(), D: ds.D(), C: ds.C, Eps: eps, Seed: seed}
			proto, err := m.Protocol(p)
			if err != nil {
				t.Fatal(err)
			}
			reports := makeReports(t, proto, ds)

			// Reference: one collector, one report at a time, user order.
			ref, err := proto.NewCollector()
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range reports {
				if err := ref.Submit(r); err != nil {
					t.Fatal(err)
				}
			}
			refEst, err := ref.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			want, err := privmdr.Answers(refEst, qs)
			if err != nil {
				t.Fatal(err)
			}

			// Batched: shuffle the stream, cut it into random-size batches
			// (including singletons and empty cuts), and submit the batches
			// from several goroutines at once.
			rng := rand.New(rand.NewPCG(123, uint64(len(reports))))
			shuffled := append([]privmdr.Report(nil), reports...)
			rng.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			var batches [][]privmdr.Report
			for lo := 0; lo < len(shuffled); {
				hi := lo + rng.IntN(700) // 0 → an empty batch now and then
				if hi > len(shuffled) {
					hi = len(shuffled)
				}
				batches = append(batches, shuffled[lo:hi])
				lo = hi
			}
			batched, err := proto.NewCollector()
			if err != nil {
				t.Fatal(err)
			}
			const workers = 4
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(batches); i += workers {
						if err := batched.SubmitBatch(batches[i]); err != nil {
							errs <- err
							return
						}
					}
					errs <- nil
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			batchedEst, err := batched.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			got, err := privmdr.Answers(batchedEst, qs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("query %d: batched answer %v != per-report answer %v", i, got[i], want[i])
				}
			}
		})
	}
}
