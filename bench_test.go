// bench_test.go wires every table and figure of the paper to a testing.B
// target, so `go test -bench=.` regenerates a smoke-scale version of the
// entire evaluation and reports headline MAEs as benchmark metrics.
// Full-scale runs go through cmd/privmdr-bench (see EXPERIMENTS.md).
package privmdr_test

import (
	"fmt"
	"testing"

	"privmdr"
	"privmdr/internal/bench"
	"privmdr/internal/ldprand"
)

// runExperiment executes one registered experiment per benchmark iteration
// at smoke scale and reports the HDG (or first-series) MAE of the first
// panel as a metric.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bench.RunConfig{Scale: bench.Smoke, N: 10_000, Reps: 1, Queries: 30, Seed: 2020}
	for i := 0; i < b.N; i++ {
		results, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) == 0 {
			b.Fatal("experiment produced no results")
		}
		if i == b.N-1 {
			r := results[0]
			series := "HDG"
			found := false
			for _, s := range r.Series {
				if s == series {
					found = true
					break
				}
			}
			if !found && len(r.Series) > 0 {
				series = r.Series[0]
			}
			for xi := range r.Xs {
				if st := r.Get(series, xi); st.OK {
					b.ReportMetric(st.Mean, series+"_mae")
					break
				}
			}
		}
	}
}

func BenchmarkFig1VaryEpsilon(b *testing.B)      { runExperiment(b, "fig1") }
func BenchmarkFig2VaryVolume(b *testing.B)       { runExperiment(b, "fig2") }
func BenchmarkFig3VaryDomain(b *testing.B)       { runExperiment(b, "fig3") }
func BenchmarkFig4VaryAttrs(b *testing.B)        { runExperiment(b, "fig4") }
func BenchmarkFig5VaryLambda(b *testing.B)       { runExperiment(b, "fig5") }
func BenchmarkFig6VaryUsers(b *testing.B)        { runExperiment(b, "fig6") }
func BenchmarkFig7Guideline(b *testing.B)        { runExperiment(b, "fig7") }
func BenchmarkFig8ComponentWise(b *testing.B)    { runExperiment(b, "fig8") }
func BenchmarkFig9TDGErrDist(b *testing.B)       { runExperiment(b, "fig9") }
func BenchmarkFig10HDGErrDist(b *testing.B)      { runExperiment(b, "fig10") }
func BenchmarkFig11FullMarginals(b *testing.B)   { runExperiment(b, "fig11") }
func BenchmarkFig12Full2DRange(b *testing.B)     { runExperiment(b, "fig12") }
func BenchmarkFig13ZeroCount(b *testing.B)       { runExperiment(b, "fig13") }
func BenchmarkFig14NonZeroCount(b *testing.B)    { runExperiment(b, "fig14") }
func BenchmarkFig15UserSplit(b *testing.B)       { runExperiment(b, "fig15") }
func BenchmarkFig16GuidelineD(b *testing.B)      { runExperiment(b, "fig16") }
func BenchmarkFig17Alg1Convergence(b *testing.B) { runExperiment(b, "fig17") }
func BenchmarkFig18Alg2Convergence(b *testing.B) { runExperiment(b, "fig18") }
func BenchmarkFig19NewDataEps(b *testing.B)      { runExperiment(b, "fig19") }
func BenchmarkFig20NewDataVolume(b *testing.B)   { runExperiment(b, "fig20") }
func BenchmarkFig21NewDataAttrs(b *testing.B)    { runExperiment(b, "fig21") }
func BenchmarkFig23Lambda6Eps(b *testing.B)      { runExperiment(b, "fig23") }
func BenchmarkFig24Lambda6Volume(b *testing.B)   { runExperiment(b, "fig24") }
func BenchmarkFig25Lambda6Domain(b *testing.B)   { runExperiment(b, "fig25") }
func BenchmarkFig26Lambda6Attrs(b *testing.B)    { runExperiment(b, "fig26") }
func BenchmarkFig27Lambda6Users(b *testing.B)    { runExperiment(b, "fig27") }
func BenchmarkFig28Covariance(b *testing.B)      { runExperiment(b, "fig28") }
func BenchmarkTable2Guideline(b *testing.B)      { runExperiment(b, "table2") }

func BenchmarkAblationMaxEntVsWU(b *testing.B)        { runExperiment(b, "ablation-maxent") }
func BenchmarkAblationFOCrossover(b *testing.B)       { runExperiment(b, "ablation-fo") }
func BenchmarkAblationPostProcessRounds(b *testing.B) { runExperiment(b, "ablation-postprocess") }

// --- substrate micro-benchmarks ---

func benchDataset(b *testing.B, n int) *privmdr.Dataset {
	b.Helper()
	ds, err := privmdr.GenerateDataset("normal", privmdr.GenOptions{N: n, D: 6, C: 64, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkHDGFit measures the full HDG pipeline (perturb + aggregate +
// post-process) for 50k users.
func BenchmarkHDGFit(b *testing.B) {
	ds := benchDataset(b, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := privmdr.FitWithRand(privmdr.NewHDG(), ds, 1.0, ldprand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHDGAnswer2D measures 2-D answering (including lazy response
// matrix construction amortized across queries).
func BenchmarkHDGAnswer2D(b *testing.B) {
	ds := benchDataset(b, 50_000)
	est, err := privmdr.Fit(privmdr.NewHDG(), ds, 1.0, 5)
	if err != nil {
		b.Fatal(err)
	}
	qs, err := privmdr.RandomWorkload(256, 2, 6, 64, 0.5, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Answer(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHDGAnswer6D measures Algorithm 2 estimation cost.
func BenchmarkHDGAnswer6D(b *testing.B) {
	ds := benchDataset(b, 50_000)
	est, err := privmdr.Fit(privmdr.NewHDG(), ds, 1.0, 7)
	if err != nil {
		b.Fatal(err)
	}
	qs, err := privmdr.RandomWorkload(64, 6, 6, 64, 0.5, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Answer(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTDGFit is the TDG counterpart of BenchmarkHDGFit.
func BenchmarkTDGFit(b *testing.B) {
	ds := benchDataset(b, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := privmdr.FitWithRand(privmdr.NewTDG(), ds, 1.0, ldprand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMSWFit covers the Square Wave + EM path.
func BenchmarkMSWFit(b *testing.B) {
	ds := benchDataset(b, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := privmdr.FitWithRand(privmdr.NewMSW(), ds, 1.0, ldprand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkAnswer fits one mechanism and measures steady-state single-query
// answering, sequentially and under parallel load (the query-server
// traffic shape). The estimator is warmed on the whole workload first so
// lazy one-time work (HDG response matrices, HIO memo entries) is not
// billed to the timed loop.
func benchmarkAnswer(b *testing.B, m privmdr.Mechanism, n, d, c, lambda int) {
	b.Helper()
	ds, err := privmdr.GenerateDataset("normal", privmdr.GenOptions{N: n, D: d, C: c, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	est, err := privmdr.Fit(m, ds, 1.0, 5)
	if err != nil {
		b.Fatal(err)
	}
	qs, err := privmdr.RandomWorkload(256, lambda, d, c, 0.5, 6)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := privmdr.AnswerBatch(est, qs); err != nil {
		b.Fatal(err)
	}
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := est.Answer(qs[i%len(qs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("par", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := est.Answer(qs[i%len(qs)]); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
}

// BenchmarkAnswerHDG / TDG / CALM / HIO measure per-query answering for the
// headline mechanisms and the baselines with nontrivial answer paths.
// (HIO runs at d=4 so its 4^d hierarchy groups stay feasible.)
func BenchmarkAnswerHDG(b *testing.B)  { benchmarkAnswer(b, privmdr.NewHDG(), 50_000, 6, 64, 2) }
func BenchmarkAnswerTDG(b *testing.B)  { benchmarkAnswer(b, privmdr.NewTDG(), 50_000, 6, 64, 2) }
func BenchmarkAnswerCALM(b *testing.B) { benchmarkAnswer(b, privmdr.NewCALM(), 50_000, 6, 64, 2) }
func BenchmarkAnswerHIO(b *testing.B)  { benchmarkAnswer(b, privmdr.NewHIO(), 20_000, 4, 64, 2) }

// BenchmarkAnswerBatchHDG measures whole-workload throughput through the
// bounded worker pool — the unit of work one POST /query performs.
func BenchmarkAnswerBatchHDG(b *testing.B) {
	ds, err := privmdr.GenerateDataset("normal", privmdr.GenOptions{N: 50_000, D: 6, C: 64, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	est, err := privmdr.Fit(privmdr.NewHDG(), ds, 1.0, 5)
	if err != nil {
		b.Fatal(err)
	}
	qs, err := privmdr.RandomWorkload(256, 2, 6, 64, 0.5, 6)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := privmdr.AnswerBatch(est, qs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := privmdr.AnswerBatch(est, qs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrueAnswers measures the exact-answer scan the harness uses.
func BenchmarkTrueAnswers(b *testing.B) {
	ds := benchDataset(b, 50_000)
	qs, err := privmdr.RandomWorkload(100, 4, 6, 64, 0.5, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		privmdr.TrueAnswers(ds, qs)
	}
}

// --- streaming collector benchmarks (PR-4) ---

// benchReports runs the client side of an HDG deployment once and returns
// the reports plus their protocol.
func benchReports(b *testing.B, n int) (privmdr.Protocol, []privmdr.Report) {
	b.Helper()
	ds := benchDataset(b, n)
	p := privmdr.Params{N: n, D: 6, C: 64, Eps: 1.0, Seed: 17}
	proto, err := privmdr.NewHDG().Protocol(p)
	if err != nil {
		b.Fatal(err)
	}
	reports := make([]privmdr.Report, n)
	record := make([]int, p.D)
	for u := 0; u < n; u++ {
		a, err := proto.Assignment(u)
		if err != nil {
			b.Fatal(err)
		}
		for i := range record {
			record[i] = ds.Value(i, u)
		}
		reports[u], err = proto.ClientReport(a, record, privmdr.ClientRand(p, u))
		if err != nil {
			b.Fatal(err)
		}
	}
	return proto, reports
}

// BenchmarkCollectorIngest measures streaming ingestion: reports fold into
// count vectors as they arrive, so bytes of collector state stay O(domain).
func BenchmarkCollectorIngest(b *testing.B) {
	proto, reports := benchReports(b, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coll, err := proto.NewCollector()
		if err != nil {
			b.Fatal(err)
		}
		if err := coll.SubmitBatch(reports); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(reports))*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
}

// BenchmarkEpochRefresh measures the live-serving refresh per mechanism:
// one new report submitted, then QueryServer.Refresh — a non-destructive
// Estimate snapshot, the estimator build (with HDG's eager-matrix warm-up),
// and the atomic epoch swap. This is the steady-state cost `privmdr serve
// -refresh` pays per interval, and the number BENCH_PR5.json tracks.
func BenchmarkEpochRefresh(b *testing.B) {
	ds, err := privmdr.GenerateDataset("normal", privmdr.GenOptions{N: 20_000, D: 3, C: 16, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range privmdr.Mechanisms() {
		b.Run(m.Name(), func(b *testing.B) {
			p := privmdr.Params{N: ds.N(), D: ds.D(), C: ds.C, Eps: 1.0, Seed: 19}
			proto, err := m.Protocol(p)
			if err != nil {
				b.Fatal(err)
			}
			srv, err := privmdr.NewLiveQueryServer(proto, privmdr.LiveOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			record := make([]int, p.D)
			reports := make([]privmdr.Report, p.N)
			for u := 0; u < p.N; u++ {
				a, err := proto.Assignment(u)
				if err != nil {
					b.Fatal(err)
				}
				for i := range record {
					record[i] = ds.Value(i, u)
				}
				reports[u], err = proto.ClientReport(a, record, privmdr.ClientRand(p, u))
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := srv.SubmitBatch(reports); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One fresh report per iteration so the swap is never
				// skipped as idle (duplicates are legal — reports are
				// anonymous).
				if err := srv.Submit(reports[i%len(reports)]); err != nil {
					b.Fatal(err)
				}
				if _, swapped, err := srv.Refresh(); err != nil {
					b.Fatal(err)
				} else if !swapped {
					b.Fatal("refresh skipped despite a fresh report")
				}
			}
		})
	}
}

// BenchmarkCollectorFinalize measures finalize latency at increasing n —
// the headline streaming win: estimation reads O(domain) counts, so the
// latency no longer grows with the user count.
func BenchmarkCollectorFinalize(b *testing.B) {
	for _, n := range []int{20_000, 80_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			proto, reports := benchReports(b, n)
			colls := make([]privmdr.Collector, b.N)
			for i := range colls {
				coll, err := proto.NewCollector()
				if err != nil {
					b.Fatal(err)
				}
				if err := coll.SubmitBatch(reports); err != nil {
					b.Fatal(err)
				}
				colls[i] = coll
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := colls[i].Finalize(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
